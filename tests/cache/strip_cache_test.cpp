#include "cache/strip_cache.hpp"

#include <gtest/gtest.h>

namespace das::cache {
namespace {

CacheConfig config_of(std::uint64_t capacity,
                      const std::string& policy = "lru") {
  CacheConfig config;
  config.enabled = true;
  config.capacity_bytes = capacity;
  config.policy = policy;
  return config;
}

CacheKey key(std::uint64_t strip) { return CacheKey{0, strip}; }

TEST(CacheConfigTest, ActiveNeedsBothTheSwitchAndCapacity) {
  CacheConfig config;
  EXPECT_FALSE(config.active());
  config.enabled = true;
  EXPECT_FALSE(config.active());  // zero capacity
  config.capacity_bytes = 1;
  EXPECT_TRUE(config.active());
  config.enabled = false;
  EXPECT_FALSE(config.active());
}

TEST(StripCacheTest, LookupRecordsHitsAndMisses) {
  StripCache cache(config_of(1024));
  EXPECT_EQ(cache.lookup(key(1)), nullptr);
  cache.insert(key(1), 100, {});
  const CachedStrip* hit = cache.lookup(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->length, 100U);
  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().misses, 1U);
  EXPECT_EQ(cache.stats().hit_bytes, 100U);
  EXPECT_EQ(cache.stats().miss_bytes, 100U);
}

TEST(StripCacheTest, CapacityIsNeverExceeded) {
  StripCache cache(config_of(250));
  for (std::uint64_t s = 0; s < 10; ++s) {
    cache.insert(key(s), 100, {});
    EXPECT_LE(cache.used_bytes(), 250U);
  }
  EXPECT_EQ(cache.entry_count(), 2U);
  EXPECT_EQ(cache.stats().evictions, 8U);
  EXPECT_EQ(cache.stats().evicted_bytes, 800U);
}

TEST(StripCacheTest, LruEvictsTheColdestStrip) {
  StripCache cache(config_of(300));
  cache.insert(key(1), 100, {});
  cache.insert(key(2), 100, {});
  cache.insert(key(3), 100, {});
  (void)cache.lookup(key(1));      // warm 1: the coldest is now 2
  cache.insert(key(4), 100, {});
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_FALSE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(3)));
  EXPECT_TRUE(cache.contains(key(4)));
}

TEST(StripCacheTest, OversizedStripIsNotCachedAndEvictsNothing) {
  StripCache cache(config_of(100));
  cache.insert(key(1), 60, {});
  cache.insert(key(2), 500, {});  // larger than the whole cache
  EXPECT_FALSE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_EQ(cache.stats().evictions, 0U);
}

TEST(StripCacheTest, ReinsertingAKeyReplacesItsBytes) {
  StripCache cache(config_of(1024));
  cache.insert(key(1), 100,
               pfs::StripBuffer::copy_of(
                   std::vector<std::byte>(100, std::byte{0xAA})));
  cache.insert(key(1), 200,
               pfs::StripBuffer::copy_of(
                   std::vector<std::byte>(200, std::byte{0xBB})));
  EXPECT_EQ(cache.entry_count(), 1U);
  EXPECT_EQ(cache.used_bytes(), 200U);
  const CachedStrip* hit = cache.lookup(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->length, 200U);
  EXPECT_EQ(hit->bytes.span().front(), std::byte{0xBB});
}

TEST(StripCacheTest, InsertedBufferIsSharedNotCopied) {
  StripCache cache(config_of(1024));
  const pfs::StripBuffer payload =
      pfs::StripBuffer::copy_of(std::vector<std::byte>(64, std::byte{0x5A}));
  cache.insert(key(1), 64, payload);
  const CachedStrip* hit = cache.lookup(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bytes.data(), payload.data());  // same payload block
  EXPECT_EQ(payload.use_count(), 2U);
}

TEST(StripCacheTest, InvalidationDropsTheStripWithoutCountingEviction) {
  StripCache cache(config_of(1024));
  cache.insert(key(1), 100, {});
  cache.invalidate(key(1));
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_EQ(cache.used_bytes(), 0U);
  EXPECT_EQ(cache.stats().invalidations, 1U);
  EXPECT_EQ(cache.stats().evictions, 0U);
  cache.invalidate(key(1));  // absent: no double count
  EXPECT_EQ(cache.stats().invalidations, 1U);
}

TEST(StripCacheTest, InvalidateFileDropsOnlyThatFile) {
  StripCache cache(config_of(1024));
  cache.insert(CacheKey{1, 0}, 50, {});
  cache.insert(CacheKey{1, 9}, 50, {});
  cache.insert(CacheKey{2, 0}, 50, {});
  cache.invalidate_file(1);
  EXPECT_FALSE(cache.contains(CacheKey{1, 0}));
  EXPECT_FALSE(cache.contains(CacheKey{1, 9}));
  EXPECT_TRUE(cache.contains(CacheKey{2, 0}));
  EXPECT_EQ(cache.stats().invalidations, 2U);
}

TEST(StripCacheTest, LfuKeepsAFrequentSubsetResidentUnderCyclicScans) {
  // Cyclic scan of 8 strips through a 4-strip cache, 8 passes. LRU always
  // evicts exactly the strip it will need next, so it never hits; LFU's
  // MRU tie-break confines the churn to one probationary slot and serves
  // the resident strips from cache every pass.
  StripCache lru(config_of(400, "lru"));
  StripCache lfu(config_of(400, "lfu"));
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      for (StripCache* cache : {&lru, &lfu}) {
        if (cache->lookup(key(s)) == nullptr) {
          cache->insert(key(s), 100, {});
        }
      }
    }
  }
  EXPECT_EQ(lru.stats().hits, 0U);
  EXPECT_GT(lfu.stats().hits, 0U);
  EXPECT_GT(lfu.stats().hit_rate(), 0.3);
}

TEST(StripCacheTest, AdmitPrefetchedCountsApartFromDemandInserts) {
  StripCache cache(config_of(1024));
  cache.admit_prefetched(key(1), 100, {});
  cache.insert(key(2), 100, {});
  EXPECT_EQ(cache.entry_count(), 2U);
  EXPECT_EQ(cache.stats().prefetch_insertions, 1U);
  EXPECT_EQ(cache.stats().insertions, 1U);
  // A prefetched strip was never demand-missed: no miss_bytes for it.
  EXPECT_EQ(cache.stats().miss_bytes, 100U);
}

TEST(StripCacheTest, FirstHitOnAPrefetchedStripIsAPrefetchHit) {
  StripCache cache(config_of(1024));
  cache.admit_prefetched(key(1), 100, {});
  ASSERT_NE(cache.lookup(key(1)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().prefetch_hits, 1U);
  EXPECT_EQ(cache.stats().prefetch_hit_bytes, 100U);
  // The first hit consumes the prefetch: later hits are plain reuse.
  ASSERT_NE(cache.lookup(key(1)), nullptr);
  EXPECT_EQ(cache.stats().hits, 2U);
  EXPECT_EQ(cache.stats().prefetch_hits, 1U);
}

TEST(StripCacheTest, PrefetchedStripsObeyCapacityAndEviction) {
  StripCache cache(config_of(250));
  for (std::uint64_t s = 0; s < 10; ++s) {
    cache.admit_prefetched(key(s), 100, {});
    EXPECT_LE(cache.used_bytes(), 250U);
  }
  EXPECT_EQ(cache.entry_count(), 2U);
  EXPECT_EQ(cache.stats().evictions, 8U);
  EXPECT_EQ(cache.stats().prefetch_insertions, 10U);
}

TEST(StripCacheTest, InvalidationDropsPrefetchedStripsToo) {
  StripCache cache(config_of(1024));
  cache.admit_prefetched(key(1), 100, {});
  cache.invalidate(key(1));
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_EQ(cache.lookup(key(1)), nullptr);
  EXPECT_EQ(cache.stats().prefetch_hits, 0U);
}

TEST(InvalidationHubTest, BroadcastsToEveryAttachedCache) {
  StripCache a(config_of(1024));
  StripCache b(config_of(1024));
  InvalidationHub hub;
  hub.attach(&a);
  hub.attach(&b);
  EXPECT_EQ(hub.attached(), 2U);

  a.insert(key(1), 100, {});
  b.insert(key(1), 100, {});
  b.insert(CacheKey{7, 3}, 100, {});
  hub.invalidate(key(1));
  EXPECT_FALSE(a.contains(key(1)));
  EXPECT_FALSE(b.contains(key(1)));
  EXPECT_TRUE(b.contains(CacheKey{7, 3}));

  hub.invalidate_file(7);
  EXPECT_FALSE(b.contains(CacheKey{7, 3}));
}

TEST(CacheStatsTest, AccumulationSumsEveryCounter) {
  CacheStats a;
  a.hits = 1;
  a.misses = 2;
  a.insertions = 3;
  a.evictions = 4;
  a.invalidations = 5;
  a.hit_bytes = 6;
  a.miss_bytes = 7;
  a.evicted_bytes = 8;
  a.prefetch_insertions = 9;
  a.prefetch_hits = 10;
  a.prefetch_hit_bytes = 11;
  CacheStats b = a;
  b += a;
  EXPECT_EQ(b.prefetch_insertions, 18U);
  EXPECT_EQ(b.prefetch_hits, 20U);
  EXPECT_EQ(b.prefetch_hit_bytes, 22U);
  b -= a;
  EXPECT_EQ(b.hits, 1U);
  EXPECT_EQ(b.prefetch_insertions, 9U);
  b -= a;
  EXPECT_EQ(b.hits, 0U);
  EXPECT_EQ(b.prefetch_hit_bytes, 0U);
  b += a;
  b += a;
  EXPECT_EQ(b.hits, 2U);
  EXPECT_EQ(b.misses, 4U);
  EXPECT_EQ(b.insertions, 6U);
  EXPECT_EQ(b.evictions, 8U);
  EXPECT_EQ(b.invalidations, 10U);
  EXPECT_EQ(b.hit_bytes, 12U);
  EXPECT_EQ(b.miss_bytes, 14U);
  EXPECT_EQ(b.evicted_bytes, 16U);
  EXPECT_DOUBLE_EQ(b.hit_rate(), 2.0 / 6.0);
}

}  // namespace
}  // namespace das::cache
