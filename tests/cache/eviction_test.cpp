#include "cache/eviction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace das::cache {
namespace {

CacheKey key(std::uint64_t strip) { return CacheKey{0, strip}; }

TEST(MakePolicyTest, KnownNamesAndUnknownNames) {
  EXPECT_EQ(make_policy("lru")->name(), "lru");
  EXPECT_EQ(make_policy("lfu")->name(), "lfu");
  EXPECT_THROW((void)make_policy("arc"), std::invalid_argument);
  EXPECT_THROW((void)make_policy(""), std::invalid_argument);
}

TEST(LruPolicyTest, VictimIsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.on_insert(key(1));
  lru.on_insert(key(2));
  lru.on_insert(key(3));
  EXPECT_EQ(lru.tracked(), 3U);
  EXPECT_EQ(lru.victim(), key(1));

  lru.on_hit(key(1));  // 2 is now the coldest
  EXPECT_EQ(lru.victim(), key(2));
}

TEST(LruPolicyTest, EraseRemovesFromTheOrder) {
  LruPolicy lru;
  lru.on_insert(key(1));
  lru.on_insert(key(2));
  lru.on_erase(key(1));
  EXPECT_EQ(lru.tracked(), 1U);
  EXPECT_EQ(lru.victim(), key(2));
}

TEST(LruPolicyTest, ReinsertionOfAnErasedKeyStartsFresh) {
  LruPolicy lru;
  lru.on_insert(key(1));
  lru.on_insert(key(2));
  lru.on_erase(key(1));
  lru.on_insert(key(1));  // now newer than 2
  EXPECT_EQ(lru.victim(), key(2));
}

TEST(LfuPolicyTest, VictimHasTheLowestFrequency) {
  LfuPolicy lfu;
  lfu.on_insert(key(1));
  lfu.on_insert(key(2));
  lfu.on_hit(key(1));
  lfu.on_hit(key(1));
  lfu.on_hit(key(2));
  lfu.on_insert(key(3));  // frequency 1, the only one
  EXPECT_EQ(lfu.victim(), key(3));
}

TEST(LfuPolicyTest, TiesBreakTowardTheMostRecentEntry) {
  // All at frequency 1: the newest entry is the probationary victim, so a
  // cyclic scan larger than the cache churns one slot instead of rotating
  // every resident entry out (scan resistance).
  LfuPolicy lfu;
  lfu.on_insert(key(1));
  lfu.on_insert(key(2));
  lfu.on_insert(key(3));
  EXPECT_EQ(lfu.victim(), key(3));

  lfu.on_hit(key(3));  // 3 leaves the tie; 1 and 2 remain at frequency 1
  EXPECT_EQ(lfu.victim(), key(2));
}

TEST(LfuPolicyTest, EraseForgetsTheFrequency) {
  LfuPolicy lfu;
  lfu.on_insert(key(1));
  lfu.on_hit(key(1));
  lfu.on_hit(key(1));
  lfu.on_erase(key(1));
  EXPECT_EQ(lfu.tracked(), 0U);
  lfu.on_insert(key(1));  // back to frequency 1
  lfu.on_insert(key(2));
  lfu.on_hit(key(2));
  EXPECT_EQ(lfu.victim(), key(1));
}

TEST(LfuPolicyTest, KeysOnDifferentFilesAreDistinct) {
  LfuPolicy lfu;
  lfu.on_insert(CacheKey{1, 7});
  lfu.on_insert(CacheKey{2, 7});
  lfu.on_hit(CacheKey{1, 7});
  EXPECT_EQ(lfu.tracked(), 2U);
  EXPECT_EQ(lfu.victim(), (CacheKey{2, 7}));
}

}  // namespace
}  // namespace das::cache
