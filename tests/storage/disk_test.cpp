#include "storage/disk.hpp"

#include <gtest/gtest.h>

namespace das::storage {
namespace {

DiskConfig test_config() {
  DiskConfig cfg;
  cfg.bandwidth_bps = 1024 * 1024;  // 1 MiB/s
  cfg.seek_time = sim::milliseconds(10);
  return cfg;
}

TEST(DiskTest, FirstAccessPaysSeek) {
  Disk d(test_config());
  const auto done = d.read(0, 0, 1024 * 1024);
  EXPECT_EQ(done, sim::seconds(1) + sim::milliseconds(10));
  EXPECT_EQ(d.seeks(), 1U);
}

TEST(DiskTest, SequentialAccessSkipsSeek) {
  Disk d(test_config());
  d.read(0, 0, 512 * 1024);
  const auto done = d.read(0, 512 * 1024, 512 * 1024);
  EXPECT_EQ(done, sim::seconds(1) + sim::milliseconds(10));  // one seek only
  EXPECT_EQ(d.seeks(), 1U);
}

TEST(DiskTest, NonSequentialOffsetSeeksAgain) {
  Disk d(test_config());
  d.read(0, 0, 1024);
  d.read(0, 999999, 1024);
  EXPECT_EQ(d.seeks(), 2U);
}

TEST(DiskTest, RequestsQueueSerially) {
  Disk d(test_config());
  d.read(0, 0, 1024 * 1024);
  const auto done = d.read(0, 1024 * 1024, 1024 * 1024);
  // Second starts when the first finishes, no extra seek (sequential).
  EXPECT_EQ(done, sim::seconds(2) + sim::milliseconds(10));
}

TEST(DiskTest, WritesAndReadsShareTheSpindle) {
  Disk d(test_config());
  d.read(0, 0, 1024 * 1024);
  const auto done = d.write(0, 1024 * 1024, 1024 * 1024);
  EXPECT_GE(done, sim::seconds(2));
  EXPECT_EQ(d.bytes_read(), 1024U * 1024);
  EXPECT_EQ(d.bytes_written(), 1024U * 1024);
}

TEST(DiskTest, BusyTimeExcludesIdleGaps) {
  Disk d(test_config());
  d.read(0, 0, 1024 * 1024);
  d.read(sim::seconds(100), 1024 * 1024, 1024 * 1024);
  EXPECT_EQ(d.busy_time(), sim::seconds(2) + sim::milliseconds(10));
}

TEST(DiskTest, WriteAfterReadAtSameSpotIsSequential) {
  Disk d(test_config());
  d.read(0, 0, 4096);
  d.write(0, 4096, 4096);
  EXPECT_EQ(d.seeks(), 1U);
}

TEST(DiskDeathTest, BadConfigAborts) {
  DiskConfig cfg;
  cfg.bandwidth_bps = -1.0;
  EXPECT_DEATH(Disk{cfg}, "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::storage
