#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "storage/disk.hpp"

namespace das {
namespace {

storage::DiskConfig jittered(double jitter, std::uint64_t seed) {
  storage::DiskConfig cfg;
  cfg.bandwidth_bps = 1024 * 1024;
  cfg.seek_time = 0;
  cfg.jitter = jitter;
  cfg.seed = seed;
  return cfg;
}

TEST(DiskJitterTest, ZeroJitterIsExact) {
  storage::Disk d(jittered(0.0, 1));
  EXPECT_EQ(d.read(0, 0, 1024 * 1024), sim::seconds(1));
}

TEST(DiskJitterTest, JitterStaysWithinTheBand) {
  storage::Disk d(jittered(0.25, 7));
  sim::SimTime previous_end = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::SimTime end =
        d.read(previous_end, static_cast<std::uint64_t>(i) * 999983, 1024 * 1024);
    const auto span = end - previous_end;
    EXPECT_GE(span, sim::seconds(0.75));
    EXPECT_LE(span, sim::seconds(1.25));
    previous_end = end;
  }
}

TEST(DiskJitterTest, SameSeedReproduces) {
  storage::Disk a(jittered(0.3, 42));
  storage::Disk b(jittered(0.3, 42));
  for (int i = 0; i < 50; ++i) {
    const auto off = static_cast<std::uint64_t>(i) * 7919;
    EXPECT_EQ(a.read(0, off, 4096), b.read(0, off, 4096));
  }
}

TEST(DiskJitterTest, DifferentSeedsDiverge) {
  storage::Disk a(jittered(0.3, 1));
  storage::Disk b(jittered(0.3, 2));
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    const auto off = static_cast<std::uint64_t>(i) * 7919;
    if (a.read(0, off, 4096) == b.read(0, off, 4096)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(DiskJitterDeathTest, JitterOutOfRangeAborts) {
  EXPECT_DEATH(storage::Disk(jittered(1.0, 1)), "DAS_REQUIRE");
  storage::DiskConfig cfg;
  cfg.jitter = -0.1;
  EXPECT_DEATH(storage::Disk{cfg}, "DAS_REQUIRE");
}

core::SchemeRunOptions jitter_run(double jitter, std::uint64_t seed) {
  core::SchemeRunOptions o;
  o.scheme = core::Scheme::kDAS;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 1ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.cluster.disk_jitter = jitter;
  o.cluster.seed = seed;
  return o;
}

TEST(ClusterJitterTest, DeterministicWithoutJitter) {
  const auto a = core::run_scheme(jitter_run(0.0, 1));
  const auto b = core::run_scheme(jitter_run(0.0, 2));  // seed irrelevant
  EXPECT_DOUBLE_EQ(a.exec_seconds, b.exec_seconds);
}

TEST(ClusterJitterTest, SeedReproducesJitteredRuns) {
  const auto a = core::run_scheme(jitter_run(0.2, 99));
  const auto b = core::run_scheme(jitter_run(0.2, 99));
  EXPECT_DOUBLE_EQ(a.exec_seconds, b.exec_seconds);
}

TEST(ClusterJitterTest, SeedsProduceTrialVariance) {
  const auto a = core::run_scheme(jitter_run(0.2, 1));
  const auto b = core::run_scheme(jitter_run(0.2, 2));
  EXPECT_NE(a.exec_seconds, b.exec_seconds);
  // Jitter perturbs timing, never the bytes moved.
  EXPECT_EQ(a.server_server_bytes, b.server_server_bytes);
  EXPECT_EQ(a.client_server_bytes, b.client_server_bytes);
}

TEST(ClusterJitterTest, JitteredRunStaysNearTheNominalTime) {
  const double nominal = core::run_scheme(jitter_run(0.0, 1)).exec_seconds;
  const double jittery = core::run_scheme(jitter_run(0.2, 1)).exec_seconds;
  EXPECT_NEAR(jittery, nominal, 0.25 * nominal);
}

}  // namespace
}  // namespace das
