#include "storage/compute_engine.hpp"

#include <gtest/gtest.h>

namespace das::storage {
namespace {

TEST(ComputeEngineTest, BaselineRate) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 1});
  EXPECT_EQ(e.execute(0, 1024 * 1024), sim::seconds(1));
}

TEST(ComputeEngineTest, CoresMultiplyThroughput) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 4});
  EXPECT_EQ(e.execute(0, 4 * 1024 * 1024), sim::seconds(1));
}

TEST(ComputeEngineTest, CostFactorSlowsProcessing) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 1});
  EXPECT_EQ(e.execute(0, 1024 * 1024, 2.0), sim::seconds(2));
}

TEST(ComputeEngineTest, CheapKernelSpeedsUp) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 1});
  EXPECT_EQ(e.execute(0, 1024 * 1024, 0.5), sim::milliseconds(500));
}

TEST(ComputeEngineTest, WorkQueuesSerially) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 1});
  e.execute(0, 1024 * 1024);
  EXPECT_EQ(e.execute(0, 1024 * 1024), sim::seconds(2));
}

TEST(ComputeEngineTest, Accounting) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 1});
  e.execute(0, 1000);
  e.execute(sim::seconds(5), 2000);
  EXPECT_EQ(e.bytes_processed(), 3000U);
  EXPECT_LT(e.busy_time(), sim::seconds(1));
}

TEST(ComputeEngineTest, ZeroBytesInstantaneous) {
  ComputeEngine e(ComputeConfig{1024 * 1024, 1});
  EXPECT_EQ(e.execute(3, 0), 3);
}

TEST(ComputeEngineDeathTest, BadArgsAbort) {
  EXPECT_DEATH(ComputeEngine(ComputeConfig{0.0, 1}), "DAS_REQUIRE");
  ComputeEngine e(ComputeConfig{1.0, 1});
  EXPECT_DEATH(e.execute(0, 1, 0.0), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::storage
