// Sampler scheduling, snapshot contents, CSV shape, and tick accounting.
#include "telemetry/sampler.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "simkit/simulator.hpp"
#include "simkit/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"

namespace das::telemetry {
namespace {

using ::testing::StartsWith;

TEST(SamplerTest, SamplesEveryPeriodWhileWorkRemains) {
  sim::Simulator simulator;
  Registry registry;
  Counter work;
  registry.enroll_counter("work.done", {}, work);
  Sampler sampler(registry, sim::milliseconds(10));

  // Workload: one event every 4 ms, offset so no event ties with a tick.
  for (int i = 1; i <= 10; ++i) {
    simulator.schedule_at(sim::milliseconds(4) * i - sim::milliseconds(1),
                          [&work]() { ++work; }, "work");
  }
  sampler.start(simulator);
  simulator.run();
  sampler.finish(simulator.now());

  // Ticks at 10/20/30/40 ms (the 40 ms tick finds the queue drained and does
  // not reschedule), plus the closing finish() snapshot.
  ASSERT_EQ(sampler.rows(), 5u);
  EXPECT_EQ(sampler.row_time(0), sim::milliseconds(10));
  EXPECT_EQ(sampler.row_time(3), sim::milliseconds(40));
  // Monotone counter snapshots: work at 3,7 ms by the 10 ms tick, and so on.
  EXPECT_EQ(sampler.value(0, 0), 2.0);
  EXPECT_EQ(sampler.value(1, 0), 5.0);
  EXPECT_EQ(sampler.value(3, 0), 10.0);
}

TEST(SamplerTest, TickCountMatchesScheduledEvents) {
  sim::Simulator simulator;
  Registry registry;
  Sampler sampler(registry, sim::milliseconds(10));
  simulator.schedule_at(sim::milliseconds(25), []() {}, "work");

  const std::uint64_t before = simulator.events_delivered();
  sampler.start(simulator);
  simulator.run();
  // Subtracting ticks() recovers the workload-only event count, which is
  // what keeps reported event totals identical with telemetry on and off.
  EXPECT_EQ(simulator.events_delivered() - before - sampler.ticks(), 1u);
}

TEST(SamplerTest, DoesNotKeepADrainedSimulationAlive) {
  sim::Simulator simulator;
  Registry registry;
  Sampler sampler(registry, sim::milliseconds(5));
  sampler.start(simulator);
  simulator.run();
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_EQ(sampler.ticks(), 1u);  // the first tick fired and stopped
}

TEST(SamplerTest, PreSampleHookRunsBeforeEverySnapshot) {
  sim::Simulator simulator;
  Registry registry;
  Sampler sampler(registry, sim::milliseconds(10));
  std::vector<sim::SimTime> hook_times;
  sampler.set_pre_sample_hook(
      [&hook_times](sim::SimTime now) { hook_times.push_back(now); });
  simulator.schedule_at(sim::milliseconds(15), []() {}, "work");
  sampler.start(simulator);
  simulator.run();
  sampler.finish(simulator.now());
  ASSERT_EQ(hook_times.size(), sampler.rows());
  EXPECT_EQ(hook_times.front(), sim::milliseconds(10));
}

TEST(SamplerTest, CsvHasHeaderAndOneRowPerSnapshot) {
  sim::Simulator simulator;
  Registry registry;
  Counter c;
  c += 7;
  registry.enroll_counter("a.count", {label("k", "v")}, c);
  registry.enroll_gauge("b.gauge", {}, []() { return 0.125; });
  Sampler sampler(registry, sim::milliseconds(10));
  sampler.finish(sim::milliseconds(20));  // single closing snapshot

  const std::string csv = sampler.csv();
  EXPECT_THAT(csv, StartsWith("time_s,a.count{k=v},b.gauge\n"));
  EXPECT_NE(csv.find("0.020000,7,0.125\n"), std::string::npos);
}

TEST(SamplerTest, CsvIsDeterministicAcrossIdenticalRuns) {
  auto run = []() {
    sim::Simulator simulator;
    Registry registry;
    Counter c;
    registry.enroll_counter("x", {}, c);
    Sampler sampler(registry, sim::milliseconds(10));
    for (int i = 1; i <= 5; ++i) {
      simulator.schedule_at(sim::milliseconds(7) * i, [&c]() { ++c; }, "w");
    }
    sampler.start(simulator);
    simulator.run();
    sampler.finish(simulator.now());
    return sampler.csv();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace das::telemetry
