// Registry enrollment, column naming, reads, and Prometheus exposition.
#include "telemetry/registry.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "simkit/stats.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {
namespace {

using ::testing::HasSubstr;

TEST(CounterTest, BehavesLikeTheRawIntegerItReplaces) {
  Counter c;
  EXPECT_EQ(c, 0u);
  ++c;
  c += 41;
  EXPECT_EQ(c, 42u);
  EXPECT_EQ(c.value(), 42u);
  const std::uint64_t as_int = c;  // implicit conversion at read sites
  EXPECT_EQ(as_int, 42u);
  EXPECT_EQ(*c.cell(), 42u);
  c.reset();
  EXPECT_EQ(c, 0u);
}

TEST(CounterTest, CellAddressIsStableAcrossIncrements) {
  Counter c;
  const std::uint64_t* cell = c.cell();
  for (int i = 0; i < 1000; ++i) ++c;
  EXPECT_EQ(cell, c.cell());
  EXPECT_EQ(*cell, 1000u);
}

TEST(RegistryTest, CounterSeriesReadsTheLiveCell) {
  Registry registry;
  Counter bytes;
  registry.enroll_counter("net.bytes", {label("class", "control")}, bytes);
  ASSERT_EQ(registry.series_count(), 1u);
  EXPECT_EQ(registry.read(0), 0.0);
  bytes += 4096;
  EXPECT_EQ(registry.read(0), 4096.0);
}

TEST(RegistryTest, ColumnNameUsesSemicolonsSoCsvNeedsNoQuoting) {
  Registry registry;
  Counter c;
  registry.enroll_counter("cache.hits",
                          {label("server", std::uint64_t{3}),
                           label("class", "server-server")},
                          c);
  EXPECT_EQ(registry.series_name(0), "cache.hits{server=3;class=server-server}");
  EXPECT_EQ(registry.series_name(0).find(','), std::string::npos);
}

TEST(RegistryTest, UnlabelledSeriesOmitsBraces) {
  Registry registry;
  Counter c;
  registry.enroll_counter("migrate.migrations", {}, c);
  EXPECT_EQ(registry.series_name(0), "migrate.migrations");
}

TEST(RegistryTest, GaugeEvaluatesTheClosureAtReadTime) {
  Registry registry;
  double level = 1.5;
  registry.enroll_gauge("cache.used_bytes", {}, [&level]() { return level; });
  EXPECT_EQ(registry.read(0), 1.5);
  level = 99.0;
  EXPECT_EQ(registry.read(0), 99.0);
  EXPECT_EQ(registry.series_kind(0), SeriesKind::kGauge);
}

TEST(RegistryTest, HistogramEnrollsCountAndSumColumns) {
  Registry registry;
  sim::Histogram h;
  registry.enroll_histogram("net.latency_s", {}, &h);
  ASSERT_EQ(registry.series_count(), 2u);
  EXPECT_EQ(registry.series_name(0), "net.latency_s.count");
  EXPECT_EQ(registry.series_name(1), "net.latency_s.sum");
  h.record(0.25);
  h.record(0.75);
  EXPECT_EQ(registry.read(0), 2.0);
  EXPECT_DOUBLE_EQ(registry.read(1), 1.0);
}

TEST(RegistryTest, SeriesOrderIsEnrollmentOrder) {
  Registry registry;
  Counter a, b;
  registry.enroll_counter("b.second", {}, b);
  registry.enroll_counter("a.first", {}, a);
  EXPECT_EQ(registry.series_name(0), "b.second");
  EXPECT_EQ(registry.series_name(1), "a.first");
}

TEST(RegistryTest, PrometheusTextRenamesAndLabelsSeries) {
  Registry registry;
  Counter bytes;
  bytes += 123;
  registry.enroll_counter("net.bytes", {label("class", "control")}, bytes);
  registry.enroll_gauge("slo.burn-rate", {label("tenant", std::uint64_t{0})},
                        []() { return 2.5; });
  const std::string text = registry.prometheus_text();
  EXPECT_THAT(text, HasSubstr("# TYPE das_net_bytes counter\n"));
  EXPECT_THAT(text, HasSubstr("das_net_bytes{class=\"control\"} 123\n"));
  EXPECT_THAT(text, HasSubstr("# TYPE das_slo_burn_rate gauge\n"));
  EXPECT_THAT(text, HasSubstr("das_slo_burn_rate{tenant=\"0\"} 2.5\n"));
}

TEST(RegistryTest, PrometheusHistogramRendersSummaryQuantiles) {
  Registry registry;
  sim::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  registry.enroll_histogram("disk.service_s", {label("server", "1")}, &h);
  const std::string text = registry.prometheus_text();
  EXPECT_THAT(text, HasSubstr("# TYPE das_disk_service_s summary\n"));
  EXPECT_THAT(text,
              HasSubstr("das_disk_service_s{server=\"1\",quantile=\"0.5\"}"));
  EXPECT_THAT(text,
              HasSubstr("das_disk_service_s{server=\"1\",quantile=\"0.99\"}"));
  EXPECT_THAT(text, HasSubstr("das_disk_service_s_count{server=\"1\"} 100\n"));
  EXPECT_THAT(text, HasSubstr("das_disk_service_s_sum{server=\"1\"} 5050\n"));
  // The .sum companion series must not render a second block.
  EXPECT_EQ(text.find("das_disk_service_s_sum_"), std::string::npos);
}

TEST(RegistryTest, PrometheusTextIsDeterministic) {
  auto render = []() {
    Registry registry;
    static Counter c;  // same value both times
    registry.enroll_counter("x.y", {label("k", "v")}, c);
    return registry.prometheus_text();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace das::telemetry
