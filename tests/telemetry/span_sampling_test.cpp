// Span sampling (--span-sample=N): deterministic 1-in-N selection by a
// hash of the mint counter. The same mint sequence must pick the same
// subset on every run (and therefore for any --jobs split that preserves
// per-context mint order), tracked spans behave exactly like unsampled
// ones, and skipped spans are free no-ops.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "simkit/time.hpp"
#include "telemetry/span.hpp"

namespace das::telemetry {
namespace {

/// Mint `n` spans and return the mint positions (1-based) that were tracked.
std::vector<std::uint64_t> tracked_positions(std::uint32_t sample_every,
                                             std::uint64_t n) {
  SpanTracker spans;
  spans.set_enabled(true);
  spans.set_sample_every(sample_every);
  std::vector<std::uint64_t> positions;
  for (std::uint64_t i = 1; i <= n; ++i) {
    if (spans.begin(0, 0, 0) != 0) positions.push_back(i);
  }
  return positions;
}

TEST(SpanSamplingTest, SampleEveryOneTracksEverything) {
  EXPECT_EQ(tracked_positions(1, 100).size(), 100U);
}

TEST(SpanSamplingTest, SelectionIsDeterministic) {
  const auto first = tracked_positions(4, 2000);
  const auto second = tracked_positions(4, 2000);
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
}

TEST(SpanSamplingTest, RateIsApproximatelyOneInN) {
  for (const std::uint32_t n : {2U, 4U, 16U}) {
    const auto tracked = tracked_positions(n, 8000);
    const double rate = static_cast<double>(tracked.size()) / 8000.0;
    EXPECT_NEAR(rate, 1.0 / n, 0.25 / n)
        << "sample_every=" << n << " tracked " << tracked.size();
  }
}

TEST(SpanSamplingTest, HashAvoidsPhaseLock) {
  // A modulo on the raw counter would track exactly every N-th mint; a
  // periodic workload (e.g. every N-th request is the expensive one) would
  // then see 0% or 100% sampling. The hash must break that phase lock:
  // consecutive tracked positions must not all sit at one residue.
  const auto tracked = tracked_positions(4, 4000);
  ASSERT_GT(tracked.size(), 10U);
  bool mixed_residues = false;
  for (std::size_t i = 1; i < tracked.size(); ++i) {
    if (tracked[i] % 4 != tracked[0] % 4) {
      mixed_residues = true;
      break;
    }
  }
  EXPECT_TRUE(mixed_residues);
}

TEST(SpanSamplingTest, SkippedSpansAreFreeAndTrackedSpansAttribute) {
  SpanTracker spans;
  spans.set_enabled(true);
  spans.set_sample_every(3);
  std::uint64_t tracked_id = 0;
  std::uint64_t minted = 0;
  while (tracked_id == 0) {
    tracked_id = spans.begin(1, 0, 0);
    ++minted;
    ASSERT_LT(minted, 100U) << "sampler never tracked a span";
  }
  // Charging a skipped span (id 0) is a no-op; the tracked span attributes.
  spans.add(0, Hop::kDisk, sim::milliseconds(7));
  spans.add(tracked_id, Hop::kDisk, sim::milliseconds(5));
  spans.end(0, sim::milliseconds(9), 0);
  spans.end(tracked_id, sim::milliseconds(9), 0);
  EXPECT_EQ(spans.spans_finished(), 1U);
  EXPECT_EQ(spans.hop_total(Hop::kDisk), sim::milliseconds(5));
}

TEST(SpanSamplingTest, MintCounterAdvancesForSkippedSpans) {
  // Skipped mints still consume ids: two trackers with different sampling
  // rates walk the same id sequence, so the sampled subset of one is a
  // subset decision, not a renumbering.
  SpanTracker dense;
  dense.set_enabled(true);
  SpanTracker sparse;
  sparse.set_enabled(true);
  sparse.set_sample_every(4);
  std::vector<std::uint64_t> dense_ids;
  std::vector<std::uint64_t> sparse_ids;
  for (int i = 0; i < 200; ++i) {
    dense_ids.push_back(dense.begin(0, 0, 0));
    const std::uint64_t id = sparse.begin(0, 0, 0);
    if (id != 0) sparse_ids.push_back(id);
  }
  // Every tracked sparse id appears at the same position in the dense walk.
  for (const std::uint64_t id : sparse_ids) {
    EXPECT_EQ(dense_ids[id - 1], id);
  }
}

}  // namespace
}  // namespace das::telemetry
