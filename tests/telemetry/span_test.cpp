// SpanTracker: minting, hop attribution, retirement, and the flight ring.
#include "telemetry/span.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "simkit/time.hpp"
#include "simkit/trace.hpp"

namespace das::telemetry {
namespace {

using ::testing::HasSubstr;

TEST(SpanTrackerTest, DisabledTrackerMintsTheUntrackedId) {
  SpanTracker spans;
  EXPECT_EQ(spans.begin(0, 0, 0), 0u);
  // All record calls on id 0 are single-branch no-ops.
  spans.add(0, Hop::kDisk, sim::milliseconds(5));
  spans.end(0, sim::milliseconds(5), 0);
  EXPECT_EQ(spans.spans_finished(), 0u);
  EXPECT_EQ(spans.hop_total(Hop::kDisk), 0);
}

TEST(SpanTrackerTest, ChargesHopsAndRetiresIntoTotals) {
  SpanTracker spans;
  spans.set_enabled(true);
  const std::uint64_t id = spans.begin(3, sim::milliseconds(1), 7);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(spans.open_spans(), 1u);

  spans.add(id, Hop::kControl, sim::milliseconds(2));
  spans.add(id, Hop::kDisk, sim::milliseconds(5));
  spans.add(id, Hop::kDisk, sim::milliseconds(3));
  // Totals only accumulate at retirement.
  EXPECT_EQ(spans.hop_total(Hop::kDisk), 0);

  spans.end(id, sim::milliseconds(20), 7);
  EXPECT_EQ(spans.open_spans(), 0u);
  EXPECT_EQ(spans.spans_finished(), 1u);
  EXPECT_EQ(spans.hop_total(Hop::kControl), sim::milliseconds(2));
  EXPECT_EQ(spans.hop_total(Hop::kDisk), sim::milliseconds(8));
  EXPECT_EQ(spans.hop_events(Hop::kDisk), 2u);

  const std::vector<SpanRecord> recent = spans.recent();
  ASSERT_EQ(recent.size(), 1u);
  const SpanRecord& r = recent.front();
  EXPECT_EQ(r.id, id);
  EXPECT_EQ(r.tenant, 3u);
  EXPECT_EQ(r.begin, sim::milliseconds(1));
  EXPECT_EQ(r.end, sim::milliseconds(20));
}

TEST(SpanTrackerTest, LateChargesAfterRetirementAreDropped) {
  // A hedge loser's payload lands after the winner already closed the span;
  // the late add/end must not corrupt attribution or double-count.
  SpanTracker spans;
  spans.set_enabled(true);
  const std::uint64_t id = spans.begin(0, 0, 0);
  spans.end(id, sim::milliseconds(10), 0);
  spans.add(id, Hop::kNetWire, sim::milliseconds(99));
  spans.end(id, sim::milliseconds(99), 0);
  EXPECT_EQ(spans.spans_finished(), 1u);
  EXPECT_EQ(spans.hop_total(Hop::kNetWire), 0);
}

TEST(SpanTrackerTest, RingKeepsOnlyTheMostRecentSpans) {
  SpanTracker spans(4);
  spans.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t id = spans.begin(0, i, 0);
    spans.end(id, i + 1, 0);
  }
  EXPECT_EQ(spans.spans_finished(), 10u);
  const std::vector<SpanRecord> recent = spans.recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().id, 7u);  // oldest surviving
  EXPECT_EQ(recent.back().id, 10u);
}

TEST(SpanTrackerTest, RingJsonRendersHopsAndNoTenantAsMinusOne) {
  SpanTracker spans;
  spans.set_enabled(true);
  const std::uint64_t id = spans.begin(UINT32_MAX, 0, 0);
  spans.add(id, Hop::kDisk, 1500);
  spans.end(id, 2000, 0);
  const std::string json = spans.ring_json();
  EXPECT_THAT(json, HasSubstr("\"tenant\": -1"));
  EXPECT_THAT(json, HasSubstr("\"disk\": {\"ns\": 1500, \"n\": 1}"));
  EXPECT_THAT(json, HasSubstr("\"end_ns\": 2000"));
  // Unused hops are omitted entirely.
  EXPECT_EQ(json.find("compute"), std::string::npos);
}

TEST(SpanTrackerTest, EmptyRingRendersAnEmptyArray) {
  SpanTracker spans;
  EXPECT_EQ(spans.ring_json(), "[]");
}

TEST(SpanTrackerTest, MirrorsSpansIntoTheTracerAsAsyncScopes) {
  SpanTracker spans;
  spans.set_enabled(true);
  sim::Tracer tracer;
  tracer.enable();
  spans.set_tracer(&tracer);
  const std::uint64_t id = spans.begin(1, sim::milliseconds(3), 5);
  spans.end(id, sim::milliseconds(9), 5);
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].ph, 'b');
  EXPECT_EQ(tracer.events()[0].cat, "span");
  EXPECT_EQ(tracer.events()[0].id, id);
  EXPECT_EQ(tracer.events()[1].ph, 'e');
}

TEST(SpanTrackerTest, HopNamesAreStable) {
  EXPECT_STREQ(to_string(Hop::kAdmission), "admission");
  EXPECT_STREQ(to_string(Hop::kControl), "control");
  EXPECT_STREQ(to_string(Hop::kNetQueue), "net-queue");
  EXPECT_STREQ(to_string(Hop::kNetWire), "net-wire");
  EXPECT_STREQ(to_string(Hop::kDisk), "disk");
  EXPECT_STREQ(to_string(Hop::kCache), "cache");
  EXPECT_STREQ(to_string(Hop::kCompute), "compute");
}

}  // namespace
}  // namespace das::telemetry
