// Plane assembly: session ids, alert capture, gauges, and the flight dump.
#include "telemetry/plane.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <cctype>

#include "simkit/simulator.hpp"
#include "simkit/time.hpp"

namespace das::telemetry {
namespace {

using ::testing::HasSubstr;

TEST(SessionTest, HashIsDeterministicAndInputSensitive) {
  const std::uint64_t a = session_hash("scheme=tas;gib=4;");
  EXPECT_EQ(a, session_hash("scheme=tas;gib=4;"));
  EXPECT_NE(a, session_hash("scheme=tss;gib=4;"));
  // FNV-1a offset basis for the empty string — pins the algorithm.
  EXPECT_EQ(session_hash(""), 0xcbf29ce484222325ULL);
}

TEST(SessionTest, HexIsSixteenLowercaseDigits) {
  const std::string hex = session_hex(0xabcULL);
  EXPECT_EQ(hex, "0000000000000abc");
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));
  }
}

TEST(PlaneTest, DisabledFeaturesStayInert) {
  Plane plane(PlaneConfig{});
  EXPECT_FALSE(plane.metrics_enabled());
  EXPECT_FALSE(plane.spans_enabled());
  EXPECT_FALSE(plane.slo().enabled());
  EXPECT_EQ(plane.spans().begin(0, 0, 0), 0u);
  EXPECT_EQ(plane.sampler_ticks(), 0u);  // metrics off -> no tick accounting
  plane.finish(sim::milliseconds(10));
  EXPECT_TRUE(plane.prometheus_snapshot().empty());
}

TEST(PlaneTest, SamplerTicksSurfaceOnlyWhenMetricsAreOn) {
  PlaneConfig config;
  config.metrics = true;
  config.sample_period = sim::milliseconds(10);
  Plane plane(config);
  sim::Simulator simulator;
  simulator.schedule_at(sim::milliseconds(25), []() {}, "work");
  plane.start(simulator);
  simulator.run();
  EXPECT_GT(plane.sampler_ticks(), 0u);
  EXPECT_EQ(plane.sampler_ticks(), plane.sampler().ticks());
}

TEST(PlaneTest, FinishFreezesThePrometheusSnapshot) {
  PlaneConfig config;
  config.metrics = true;
  config.prometheus = true;
  Plane plane(config);
  double level = 1.0;
  plane.registry().enroll_gauge("x.level", {}, [&level]() { return level; });
  plane.finish(sim::milliseconds(5));
  const std::string frozen = plane.prometheus_snapshot();
  EXPECT_THAT(frozen, HasSubstr("das_x_level 1\n"));
  level = 2.0;  // mutating after finish() must not change the snapshot
  EXPECT_EQ(plane.prometheus_snapshot(), frozen);
}

TEST(PlaneTest, PrometheusSnapshotIsOptInSeparatelyFromMetrics) {
  // A CSV-only run must not pay the exposition's histogram quantile sorts.
  PlaneConfig config;
  config.metrics = true;
  Plane plane(config);
  plane.registry().enroll_gauge("x.level", {}, []() { return 1.0; });
  plane.finish(sim::milliseconds(5));
  EXPECT_TRUE(plane.prometheus_snapshot().empty());
}

TEST(PlaneTest, SloAlertCapturesTheFlightRingAtBreachTime) {
  PlaneConfig config;
  config.spans = true;
  config.slo.target_s = 0.1;
  config.slo.budget = 0.05;
  Plane plane(config);

  // One finished span so the captured ring is non-empty.
  const std::uint64_t span = plane.spans().begin(0, 0, 0);
  plane.spans().add(span, Hop::kDisk, sim::milliseconds(3));
  plane.spans().end(span, sim::milliseconds(4), 0);

  for (int i = 1; i <= 8; ++i) {
    plane.slo().record(0, sim::milliseconds(i), 1.0);
  }
  ASSERT_EQ(plane.alerts().size(), 1u);
  const Plane::Alert& alert = plane.alerts().front();
  EXPECT_EQ(alert.tenant, 0u);
  EXPECT_EQ(alert.at, sim::milliseconds(8));
  EXPECT_THAT(alert.spans_json, HasSubstr("\"disk\""));

  // A span finishing *after* the breach is absent from the captured ring —
  // the alert is a snapshot, not a live view.
  const std::uint64_t late = plane.spans().begin(1, sim::milliseconds(9), 0);
  plane.spans().end(late, sim::milliseconds(10), 0);
  EXPECT_EQ(alert.spans_json.find("\"tenant\": 1"), std::string::npos);
}

TEST(PlaneTest, FlightJsonJoinsSessionAlertsAndSpans) {
  PlaneConfig config;
  config.spans = true;
  config.slo.target_s = 0.1;
  Plane plane(config);
  for (int i = 1; i <= 8; ++i) {
    plane.slo().record(3, sim::milliseconds(100 + i), 1.0);
  }
  const std::string json = plane.flight_json(0xdeadbeefULL);
  EXPECT_THAT(json, HasSubstr("\"session\": \"00000000deadbeef\""));
  EXPECT_THAT(json, HasSubstr("\"spans_finished\": 0"));
  EXPECT_THAT(json, HasSubstr("\"tenant\": 3"));
  EXPECT_THAT(json, HasSubstr("\"at_s\": 0.108000"));
  EXPECT_THAT(json, HasSubstr("\"spans\": []"));
}

TEST(PlaneTest, FlightJsonWithNoAlertsIsStillWellFormed) {
  Plane plane(PlaneConfig{});
  const std::string json = plane.flight_json(1);
  EXPECT_THAT(json, HasSubstr("\"alerts\": []"));
}

TEST(PlaneTest, EnrollSloGaugesAddsTwoSeriesPerTenant) {
  PlaneConfig config;
  config.slo.target_s = 0.1;
  Plane plane(config);
  plane.enroll_slo_gauges(2);
  ASSERT_EQ(plane.registry().series_count(), 4u);
  EXPECT_EQ(plane.registry().series_name(0), "slo.burn_rate{tenant=0}");
  EXPECT_EQ(plane.registry().series_name(1), "slo.window_p99_s{tenant=0}");
  EXPECT_EQ(plane.registry().series_name(2), "slo.burn_rate{tenant=1}");

  plane.slo().record(1, sim::milliseconds(1), 1.0);  // one violation
  EXPECT_GT(plane.registry().read(2), 0.0);
  EXPECT_EQ(plane.registry().read(0), 0.0);  // tenant 0 untouched
}

TEST(PlaneTest, EnrollSloGaugesIsANoOpWhenSloIsOff) {
  Plane plane(PlaneConfig{});
  plane.enroll_slo_gauges(4);
  EXPECT_EQ(plane.registry().series_count(), 0u);
}

TEST(PlaneTest, PreSampleHookRefreshesSloWindows) {
  PlaneConfig config;
  config.metrics = true;
  config.sample_period = sim::milliseconds(200);
  config.slo.target_s = 0.1;
  config.slo.window_s = 0.05;
  Plane plane(config);
  plane.enroll_slo_gauges(1);
  plane.slo().record(0, sim::milliseconds(1), 1.0);
  EXPECT_GT(plane.slo().burn_rate(0), 0.0);

  sim::Simulator simulator;
  simulator.schedule_at(sim::milliseconds(150), []() {}, "work");
  plane.start(simulator);
  simulator.run();
  // The 200ms sample refreshed the 50ms window first, so the exported burn
  // rate at that row is 0, not the stale breach.
  ASSERT_GE(plane.sampler().rows(), 1u);
  EXPECT_EQ(plane.sampler().value(0, 0), 0.0);
}

}  // namespace
}  // namespace das::telemetry
