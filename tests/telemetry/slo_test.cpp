// SloMonitor: burn-rate arithmetic, alert-once semantics, window pruning.
#include "telemetry/slo.hpp"

#include <gtest/gtest.h>

#include "simkit/time.hpp"

namespace das::telemetry {
namespace {

SloConfig make_config(double target_s = 0.1, double budget = 0.25,
                      double window_s = 1.0) {
  SloConfig c;
  c.target_s = target_s;
  c.budget = budget;
  c.window_s = window_s;
  return c;
}

TEST(SloMonitorTest, NonPositiveTargetDisablesEverything) {
  SloMonitor slo(make_config(/*target_s=*/0.0));
  EXPECT_FALSE(slo.enabled());
  slo.record(0, sim::milliseconds(1), 99.0);
  EXPECT_EQ(slo.tenants(), 0u);
  EXPECT_EQ(slo.burn_rate(0), 0.0);
  EXPECT_EQ(slo.alerts_fired(), 0u);
}

TEST(SloMonitorTest, BurnRateIsViolationFractionOverBudget) {
  SloMonitor slo(make_config(/*target_s=*/0.1, /*budget=*/0.25));
  // 4 samples, 1 violation: fraction 0.25, budget 0.25 -> burn 1.0. Stay
  // below kMinAlertSamples so no alert interferes.
  slo.record(0, sim::milliseconds(1), 0.05);
  slo.record(0, sim::milliseconds(2), 0.05);
  slo.record(0, sim::milliseconds(3), 0.05);
  slo.record(0, sim::milliseconds(4), 0.50);
  EXPECT_DOUBLE_EQ(slo.burn_rate(0), 1.0);
  EXPECT_EQ(slo.alerts_fired(), 0u);  // only 4 of the 8 required samples
}

TEST(SloMonitorTest, ExactlyOnTargetIsNotAViolation) {
  SloMonitor slo(make_config(/*target_s=*/0.1));
  slo.record(0, sim::milliseconds(1), 0.1);
  EXPECT_EQ(slo.burn_rate(0), 0.0);
}

TEST(SloMonitorTest, AlertFiresOncePerTenantAtMinimumSampleCount) {
  SloMonitor slo(make_config(/*target_s=*/0.1, /*budget=*/0.05));
  std::uint32_t alert_tenant = 99;
  sim::SimTime alert_at = 0;
  double alert_burn = 0.0;
  int calls = 0;
  slo.set_alert_hook([&](std::uint32_t tenant, sim::SimTime now, double burn) {
    ++calls;
    alert_tenant = tenant;
    alert_at = now;
    alert_burn = burn;
  });
  // 7 violations: burn is sky-high but the window is too thin to trust.
  for (int i = 1; i <= 7; ++i) {
    slo.record(2, sim::milliseconds(i), 1.0);
    EXPECT_EQ(calls, 0);
  }
  // The 8th sample crosses kMinAlertSamples and fires.
  slo.record(2, sim::milliseconds(8), 1.0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(alert_tenant, 2u);
  EXPECT_EQ(alert_at, sim::milliseconds(8));
  EXPECT_DOUBLE_EQ(alert_burn, 1.0 / 0.05);
  EXPECT_TRUE(slo.alerted(2));
  EXPECT_EQ(slo.alerts_fired(), 1u);
  // Further breaches are latched out.
  slo.record(2, sim::milliseconds(9), 1.0);
  EXPECT_EQ(calls, 1);
}

TEST(SloMonitorTest, AlertsAreIndependentPerTenant) {
  SloMonitor slo(make_config(/*target_s=*/0.1, /*budget=*/0.05));
  std::vector<std::uint32_t> fired;
  slo.set_alert_hook([&fired](std::uint32_t tenant, sim::SimTime, double) {
    fired.push_back(tenant);
  });
  for (int i = 1; i <= 8; ++i) {
    slo.record(0, sim::milliseconds(i), 1.0);  // tenant 0 breaches
    slo.record(1, sim::milliseconds(i), 0.01);  // tenant 1 is healthy
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);
  EXPECT_TRUE(slo.alerted(0));
  EXPECT_FALSE(slo.alerted(1));
}

TEST(SloMonitorTest, WindowSlidesOldSamplesOut) {
  SloMonitor slo(make_config(/*target_s=*/0.1, /*budget=*/0.25,
                             /*window_s=*/0.1));
  // One violation early; after the window passes it stops counting.
  slo.record(0, sim::milliseconds(1), 1.0);
  EXPECT_GT(slo.burn_rate(0), 0.0);
  slo.record(0, sim::milliseconds(500), 0.01);
  EXPECT_EQ(slo.burn_rate(0), 0.0);  // the violation aged out on record()
}

TEST(SloMonitorTest, RefreshPrunesWithoutRecording) {
  SloMonitor slo(make_config(/*target_s=*/0.1, /*budget=*/0.25,
                             /*window_s=*/0.1));
  slo.record(0, sim::milliseconds(1), 1.0);
  EXPECT_GT(slo.burn_rate(0), 0.0);
  slo.refresh(sim::milliseconds(500));
  EXPECT_EQ(slo.burn_rate(0), 0.0);
  EXPECT_EQ(slo.window_p99_s(0), 0.0);
}

TEST(SloMonitorTest, WindowP99UsesNearestRank) {
  SloMonitor slo(make_config(/*target_s=*/10.0));  // high target: no alerts
  for (int i = 1; i <= 100; ++i) {
    slo.record(0, sim::milliseconds(i), static_cast<double>(i) / 1000.0);
  }
  // Nearest-rank over 100 sorted samples: rank(0.99) -> the 99th value.
  EXPECT_DOUBLE_EQ(slo.window_p99_s(0), 0.099);
  EXPECT_EQ(slo.window_p99_s(7), 0.0);  // unknown tenant
}

}  // namespace
}  // namespace das::telemetry
