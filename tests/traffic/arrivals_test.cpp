#include "traffic/arrivals.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace das::traffic {
namespace {

ArrivalConfig small_config() {
  ArrivalConfig config;
  config.tenants = 4;
  config.jobs_per_tenant = 16;
  config.rate_hz = 2.0;
  config.job_bytes = (3ULL << 20) + 1;  // deliberately not strip-aligned
  config.datasets = 3;
  config.dataset_strips = 64;
  config.strip_bytes = 1ULL << 20;
  return config;
}

TEST(ArrivalsTest, GeneratesJobsPerTenantSortedByTime) {
  const auto schedule = generate_poisson(small_config());
  ASSERT_EQ(schedule.size(), 4u * 16u);
  std::vector<std::uint64_t> per_tenant(4, 0);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const JobArrival& job = schedule[i];
    ASSERT_LT(job.tenant, 4u);
    ++per_tenant[job.tenant];
    if (i > 0) EXPECT_GE(job.at, schedule[i - 1].at);
  }
  for (const std::uint64_t n : per_tenant) EXPECT_EQ(n, 16u);
}

TEST(ArrivalsTest, BytesAreStripAlignedAndRangesFit) {
  const ArrivalConfig config = small_config();
  for (const JobArrival& job : generate_poisson(config)) {
    EXPECT_GT(job.bytes, 0u);
    EXPECT_EQ(job.bytes % config.strip_bytes, 0u);
    EXPECT_LT(job.dataset, config.datasets);
    const std::uint64_t strips = job.bytes / config.strip_bytes;
    EXPECT_LE(job.first_strip + strips, config.dataset_strips);
  }
}

TEST(ArrivalsTest, Deterministic) {
  const ArrivalConfig config = small_config();
  const auto a = generate_poisson(config);
  const auto b = generate_poisson(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].dataset, b[i].dataset);
    EXPECT_EQ(a[i].first_strip, b[i].first_strip);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

// The core open-loop property: tenant t's private schedule must not depend
// on how many other tenants exist (per-tenant forked RNG substreams).
TEST(ArrivalsTest, TenantScheduleIndependentOfTenantCount) {
  ArrivalConfig solo = small_config();
  solo.tenants = 1;
  const auto alone = generate_poisson(solo);

  std::vector<JobArrival> tenant0;
  for (const JobArrival& job : generate_poisson(small_config())) {
    if (job.tenant == 0) tenant0.push_back(job);
  }
  ASSERT_EQ(alone.size(), tenant0.size());
  for (std::size_t i = 0; i < alone.size(); ++i) {
    EXPECT_EQ(alone[i].at, tenant0[i].at);
    EXPECT_EQ(alone[i].kind, tenant0[i].kind);
    EXPECT_EQ(alone[i].dataset, tenant0[i].dataset);
    EXPECT_EQ(alone[i].first_strip, tenant0[i].first_strip);
    EXPECT_EQ(alone[i].bytes, tenant0[i].bytes);
  }
}

TEST(ArrivalsTest, MixZeroDisablesKind) {
  ArrivalConfig config = small_config();
  config.mix[1] = config.mix[2] = config.mix[3] = 0.0;  // raw reads only
  for (const JobArrival& job : generate_poisson(config)) {
    EXPECT_EQ(job.kind, JobKind::kRawRead);
  }
}

TEST(ArrivalsTest, SeedChangesSchedule) {
  ArrivalConfig config = small_config();
  const auto a = generate_poisson(config);
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  const auto b = generate_poisson(config);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].at != b[i].at;
  }
  EXPECT_TRUE(differs);
}

class TraceFileTest : public ::testing::Test {
 protected:
  std::string write_trace(const std::string& body) {
    const std::string path =
        ::testing::TempDir() + "das_traffic_trace_test.csv";
    std::ofstream out(path, std::ios::trunc);
    out << body;
    out.close();
    return path;
  }

  void TearDown() override {
    std::remove((::testing::TempDir() + "das_traffic_trace_test.csv").c_str());
  }
};

TEST_F(TraceFileTest, ParsesRowsAndRoundsBytesToStrips) {
  ArrivalConfig config = small_config();
  const std::string path = write_trace(
      "time_s,tenant,kind,bytes\n"
      "# comment line\n"
      "0.5,0,raw-read,1048576\n"
      "0.25,1,flow-routing,1000000\n"
      "1.0,3,gaussian-2d,2097152\n");
  const auto schedule = load_trace(path, config);
  ASSERT_EQ(schedule.size(), 3u);
  // Sorted by time, not file order.
  EXPECT_EQ(schedule[0].tenant, 1u);
  EXPECT_EQ(schedule[0].kind, JobKind::kFlowRouting);
  EXPECT_EQ(schedule[0].bytes, 1ULL << 20);  // 1000000 rounded up to a strip
  EXPECT_EQ(schedule[1].tenant, 0u);
  EXPECT_EQ(schedule[1].kind, JobKind::kRawRead);
  EXPECT_EQ(schedule[2].tenant, 3u);
  EXPECT_EQ(schedule[2].bytes, 2ULL << 20);
}

TEST_F(TraceFileTest, RejectsUnknownKind) {
  const std::string path = write_trace("0.5,0,warp-drive,1048576\n");
  EXPECT_THROW((void)load_trace(path, small_config()), std::invalid_argument);
}

TEST_F(TraceFileTest, RejectsTenantOutOfRange) {
  const std::string path = write_trace("0.5,9,raw-read,1048576\n");
  EXPECT_THROW((void)load_trace(path, small_config()), std::invalid_argument);
}

TEST_F(TraceFileTest, RejectsMissingFile) {
  EXPECT_THROW(
      (void)load_trace("/nonexistent/trace.csv", small_config()),
      std::invalid_argument);
}

}  // namespace
}  // namespace das::traffic
