#include "traffic/engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace das::traffic {
namespace {

TrafficConfig small_config() {
  TrafficConfig config;
  config.arrivals.tenants = 4;
  config.arrivals.jobs_per_tenant = 6;
  config.arrivals.rate_hz = 2.0;
  config.arrivals.job_bytes = 4ULL << 20;
  config.arrivals.strip_bytes = 1ULL << 20;
  config.arrivals.datasets = 2;
  config.arrivals.dataset_strips = 256;
  return config;
}

TEST(TrafficEngineTest, CompletesEveryJobAndAccountsBytes) {
  const TrafficReport report = run_traffic(small_config());
  ASSERT_EQ(report.tenants.size(), 4u);
  EXPECT_EQ(report.total.jobs_submitted, 24u);
  EXPECT_EQ(report.total.jobs_completed, 24u);
  EXPECT_EQ(report.total.bytes_read, 24u * (4ULL << 20));
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_GT(report.events, 0u);
  EXPECT_EQ(report.reads_issued, 24u * 4u);  // 4 strips per job
  for (const TenantStats& tenant : report.tenants) {
    EXPECT_EQ(tenant.jobs_completed, 6u);
    EXPECT_EQ(tenant.sojourn.count(), 6u);
    EXPECT_EQ(tenant.service.count(), 6u);
  }
}

TEST(TrafficEngineTest, SloCsvIsByteIdenticalAcrossRuns) {
  const std::string a = run_traffic(small_config()).slo_csv();
  const std::string b = run_traffic(small_config()).slo_csv();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find(slo_csv_header()), std::string::npos);
  EXPECT_NE(a.find("\nall,"), std::string::npos);  // aggregate row present
}

TEST(TrafficEngineTest, SeedChangesResults) {
  TrafficConfig other = small_config();
  other.arrivals.seed += 1;
  EXPECT_NE(run_traffic(small_config()).slo_csv(),
            run_traffic(other).slo_csv());
}

TEST(TrafficEngineTest, AdmissionDefersAndStillCompletes) {
  TrafficConfig config = small_config();
  config.arrivals.rate_hz = 50.0;  // burst everything at once
  config.admission.enabled = true;
  config.admission.capacity_bytes = 4ULL << 20;  // one job in flight
  const TrafficReport report = run_traffic(config);
  EXPECT_EQ(report.total.jobs_completed, 24u);
  EXPECT_GT(report.total.jobs_deferred, 0u);
  EXPECT_GT(report.total.admission_wait.summary().max, 0.0);

  // Throttled tenants trade sojourn for isolation: admission wait shows up
  // in sojourn but not in service time.
  EXPECT_GE(report.total.sojourn.summary().mean,
            report.total.service.summary().mean);
}

TEST(TrafficEngineTest, FairQueueKeepsThroughputAndCountsDispatches) {
  TrafficConfig config = small_config();
  config.fair_queue = true;
  const TrafficReport report = run_traffic(config);
  EXPECT_EQ(report.total.jobs_completed, 24u);
  EXPECT_GT(report.nic_scheduled, 0u);
  EXPECT_GT(report.disk_scheduled, 0u);
}

TEST(TrafficEngineTest, WfqWeightFavorsHeavyTenantUnderContention) {
  TrafficConfig config = small_config();
  config.arrivals.tenants = 16;
  config.arrivals.jobs_per_tenant = 8;
  config.arrivals.rate_hz = 100.0;  // near-simultaneous burst: deep queues
  config.fair_queue = true;
  config.weights = {8.0, 1.0};  // even tenants heavy, odd tenants light
  const TrafficReport report = run_traffic(config);

  double heavy = 0.0, light = 0.0;
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    const double mean = report.tenants[t].sojourn.summary().mean;
    (t % 2 == 0 ? heavy : light) += mean;
  }
  EXPECT_LT(heavy, light);
}

TEST(TrafficEngineTest, TraceFileDrivesSubmissions) {
  const std::string path =
      ::testing::TempDir() + "das_traffic_engine_trace.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "time_s,tenant,kind,bytes\n";
    for (int i = 0; i < 6; ++i) {
      out << (0.25 * i) << "," << (i % 2) << ",raw-read,2097152\n";
    }
  }
  TrafficConfig config = small_config();
  config.arrivals.tenants = 2;
  config.trace_file = path;
  const TrafficReport report = run_traffic(config);
  std::remove(path.c_str());

  EXPECT_EQ(report.total.jobs_completed, 6u);
  EXPECT_EQ(report.total.bytes_read, 6u * (2ULL << 20));
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].jobs_completed, 3u);
  EXPECT_EQ(report.tenants[1].jobs_completed, 3u);
}

TEST(TrafficEngineTest, TenKilotenantsStayAffordable) {
  // The scale end of the bench in miniature: many tenants, tiny jobs.
  TrafficConfig config = small_config();
  config.arrivals.tenants = 2000;
  config.arrivals.jobs_per_tenant = 1;
  config.arrivals.job_bytes = 1ULL << 20;
  const TrafficReport report = run_traffic(config);
  EXPECT_EQ(report.total.jobs_completed, 2000u);
  EXPECT_EQ(report.tenants.size(), 2000u);
}

}  // namespace
}  // namespace das::traffic
