// List I/O under the multi-tenant traffic engine: --access=strided:K makes
// every job fetch each strip's every-K-th row unit as one list request.
// Payload accounting, determinism, dense-access equivalence, and
// composition with hedging all ride the same read path as whole strips.
#include <gtest/gtest.h>

#include <cstdint>

#include "traffic/engine.hpp"

namespace das::traffic {
namespace {

TrafficConfig base_config() {
  TrafficConfig config;
  config.arrivals.tenants = 4;
  config.arrivals.jobs_per_tenant = 4;
  config.arrivals.rate_hz = 2.0;
  config.arrivals.job_bytes = 4ULL << 20;
  config.arrivals.strip_bytes = 1ULL << 20;
  config.arrivals.datasets = 2;
  config.arrivals.dataset_strips = 64;
  config.replication = 2;
  return config;
}

TEST(ListIoTrafficTest, StridedAccessReadsExactlyTheSampledFraction) {
  TrafficConfig config = base_config();
  config.access_stride = 8;
  const TrafficReport report = run_traffic(config);

  EXPECT_EQ(report.total.jobs_completed, 16U);
  // Each 1 MiB strip is sampled as every-8th 4 KiB unit: exactly 1/8 of
  // the whole-strip bytes.
  const std::uint64_t whole = 16ULL * (4ULL << 20);
  EXPECT_EQ(report.total.bytes_read, whole / 8);
  EXPECT_GT(report.reads_issued, 0U);
}

TEST(ListIoTrafficTest, DenseStrideMatchesWholeStripBaseline) {
  const TrafficReport baseline = run_traffic(base_config());

  TrafficConfig dense = base_config();
  dense.access_stride = 1;
  const TrafficReport report = run_traffic(dense);

  EXPECT_EQ(report.total.jobs_completed, baseline.total.jobs_completed);
  EXPECT_EQ(report.total.bytes_read, baseline.total.bytes_read);
  EXPECT_EQ(report.reads_issued, baseline.reads_issued);
  EXPECT_EQ(report.total.sojourn.summary().p99,
            baseline.total.sojourn.summary().p99);
}

TEST(ListIoTrafficTest, SparseAccessFinishesFasterThanWholeStrips) {
  const TrafficReport whole = run_traffic(base_config());

  TrafficConfig sparse = base_config();
  sparse.access_stride = 8;
  const TrafficReport report = run_traffic(sparse);

  ASSERT_EQ(report.total.jobs_completed, whole.total.jobs_completed);
  // An 8x payload cut must show up in service time (same cluster, same
  // arrivals, less data per job).
  EXPECT_LT(report.total.service.summary().p99,
            whole.total.service.summary().p99);
}

TEST(ListIoTrafficTest, ListReadsAreDeterministic) {
  TrafficConfig config = base_config();
  config.access_stride = 4;
  const TrafficReport first = run_traffic(config);
  const TrafficReport second = run_traffic(config);
  EXPECT_EQ(first.slo_csv(), second.slo_csv());
  EXPECT_EQ(first.total.bytes_read, second.total.bytes_read);
  EXPECT_EQ(first.events, second.events);
}

TEST(ListIoTrafficTest, ListReadsComposeWithHedging) {
  TrafficConfig config = base_config();
  config.access_stride = 8;
  config.cluster.straggler_count = 2;
  config.cluster.straggler_slowdown = 32.0;
  config.arrivals.tenants = 32;
  config.arrivals.jobs_per_tenant = 8;
  config.arrivals.rate_hz = 3.0;
  config.arrivals.dataset_strips = 512;
  config.replication = 3;
  config.straggler.hedge = true;
  const TrafficReport report = run_traffic(config);

  EXPECT_EQ(report.total.jobs_completed, 32U * 8U);
  EXPECT_GT(report.hedges_issued, 0U);
  // Every hedge produces at most one losing copy, and a losing copy wastes
  // the LIST payload (1/8 strip = 128 KiB), never the whole strip.
  const std::uint64_t list_payload = (1ULL << 20) / 8;
  EXPECT_GT(report.wasted_bytes, 0U);
  EXPECT_EQ(report.wasted_bytes % list_payload, 0U);
  EXPECT_LE(report.wasted_bytes, report.hedges_issued * list_payload);
}

}  // namespace
}  // namespace das::traffic
