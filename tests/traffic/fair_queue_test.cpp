#include "traffic/fair_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace das::traffic {
namespace {

std::vector<std::string> drain(WeightedFairQueue<std::string>& queue) {
  std::vector<std::string> order;
  while (!queue.empty()) order.push_back(queue.pop());
  return order;
}

TEST(WeightedFairQueueTest, EqualWeightsInterleaveTenants) {
  WeightedFairQueue<std::string> queue;
  // Tenant 0 dumps a burst first; tenant 1 submits the same amount after.
  queue.push(0, 10, "a0");
  queue.push(0, 10, "a1");
  queue.push(0, 10, "a2");
  queue.push(1, 10, "b0");
  queue.push(1, 10, "b1");
  queue.push(1, 10, "b2");
  // Virtual-time WFQ serves them round-robin, not burst-first.
  EXPECT_EQ(drain(queue),
            (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(WeightedFairQueueTest, DoubleWeightDrainsTwiceTheWork) {
  WeightedFairQueue<std::string> queue;
  queue.set_weight(0, 2.0);
  for (int i = 0; i < 4; ++i) {
    queue.push(0, 10, "heavy" + std::to_string(i));
    queue.push(1, 10, "light" + std::to_string(i));
  }
  const auto order = drain(queue);
  // In the first half of service, the weight-2 tenant gets ~2/3 of slots.
  int heavy_early = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (order[i].rfind("heavy", 0) == 0) ++heavy_early;
  }
  EXPECT_EQ(heavy_early, 3);
  // Everyone still completes.
  EXPECT_EQ(order.size(), 8u);
}

TEST(WeightedFairQueueTest, EqualTagsServeInArrivalOrder) {
  WeightedFairQueue<int> queue;
  for (int i = 0; i < 16; ++i) queue.push(static_cast<std::uint32_t>(i), 5, i);
  // 16 distinct tenants, identical cost: every finish tag ties; sequence
  // numbers keep the service order deterministic and FIFO.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(WeightedFairQueueTest, IdleTenantGetsNoBackloggedCredit) {
  WeightedFairQueue<std::string> queue;
  // Tenant 0 is served for a long stretch while tenant 1 is idle.
  for (int i = 0; i < 8; ++i) queue.push(0, 10, "a" + std::to_string(i));
  for (int i = 0; i < 8; ++i) (void)queue.pop();
  // A late arrival starts at the current virtual time, not at zero — it may
  // not preempt-and-monopolize as if it had been queued all along.
  queue.push(1, 10, "late");
  queue.push(0, 10, "a8");
  EXPECT_EQ(queue.pop(), "late");  // one fair slot, not 8 slots of credit
  EXPECT_EQ(queue.pop(), "a8");
  EXPECT_TRUE(queue.empty());
}

TEST(WeightedFairQueueTest, MoveOnlyItemsSupported) {
  // The NIC queue holds net::Message (move-only InplaceFn payloads); make
  // sure the heap never requires copies.
  struct MoveOnly {
    explicit MoveOnly(int v) : value(v) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    MoveOnly(const MoveOnly&) = delete;
    MoveOnly& operator=(const MoveOnly&) = delete;
    int value;
  };
  WeightedFairQueue<MoveOnly> queue;
  queue.push(0, 1, MoveOnly{7});
  queue.push(1, 1, MoveOnly{9});
  EXPECT_EQ(queue.pop().value, 7);
  EXPECT_EQ(queue.pop().value, 9);
}

}  // namespace
}  // namespace das::traffic
