#include "traffic/fair_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/network.hpp"
#include "pfs/layout.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"
#include "simkit/time.hpp"

namespace das::traffic {
namespace {

std::vector<std::string> drain(WeightedFairQueue<std::string>& queue) {
  std::vector<std::string> order;
  while (!queue.empty()) order.push_back(queue.pop());
  return order;
}

TEST(WeightedFairQueueTest, EqualWeightsInterleaveTenants) {
  WeightedFairQueue<std::string> queue;
  // Tenant 0 dumps a burst first; tenant 1 submits the same amount after.
  queue.push(0, 10, "a0");
  queue.push(0, 10, "a1");
  queue.push(0, 10, "a2");
  queue.push(1, 10, "b0");
  queue.push(1, 10, "b1");
  queue.push(1, 10, "b2");
  // Virtual-time WFQ serves them round-robin, not burst-first.
  EXPECT_EQ(drain(queue),
            (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(WeightedFairQueueTest, DoubleWeightDrainsTwiceTheWork) {
  WeightedFairQueue<std::string> queue;
  queue.set_weight(0, 2.0);
  for (int i = 0; i < 4; ++i) {
    queue.push(0, 10, "heavy" + std::to_string(i));
    queue.push(1, 10, "light" + std::to_string(i));
  }
  const auto order = drain(queue);
  // In the first half of service, the weight-2 tenant gets ~2/3 of slots.
  int heavy_early = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (order[i].rfind("heavy", 0) == 0) ++heavy_early;
  }
  EXPECT_EQ(heavy_early, 3);
  // Everyone still completes.
  EXPECT_EQ(order.size(), 8u);
}

TEST(WeightedFairQueueTest, EqualTagsServeInArrivalOrder) {
  WeightedFairQueue<int> queue;
  for (int i = 0; i < 16; ++i) queue.push(static_cast<std::uint32_t>(i), 5, i);
  // 16 distinct tenants, identical cost: every finish tag ties; sequence
  // numbers keep the service order deterministic and FIFO.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(WeightedFairQueueTest, IdleTenantGetsNoBackloggedCredit) {
  WeightedFairQueue<std::string> queue;
  // Tenant 0 is served for a long stretch while tenant 1 is idle.
  for (int i = 0; i < 8; ++i) queue.push(0, 10, "a" + std::to_string(i));
  for (int i = 0; i < 8; ++i) (void)queue.pop();
  // A late arrival starts at the current virtual time, not at zero — it may
  // not preempt-and-monopolize as if it had been queued all along.
  queue.push(1, 10, "late");
  queue.push(0, 10, "a8");
  EXPECT_EQ(queue.pop(), "late");  // one fair slot, not 8 slots of credit
  EXPECT_EQ(queue.pop(), "a8");
  EXPECT_TRUE(queue.empty());
}

TEST(WeightedFairQueueTest, MidRunReweightAppliesToLaterPushes) {
  WeightedFairQueue<std::string> queue;
  queue.push(0, 10, "a0");
  queue.push(1, 10, "b0");
  EXPECT_EQ(queue.pop(), "a0");
  EXPECT_EQ(queue.pop(), "b0");

  // Reweighting between bursts must shape the next burst: tenant 0's new
  // pushes earn half-cost finish tags from the current virtual time.
  queue.set_weight(0, 2.0);
  for (int i = 0; i < 4; ++i) {
    queue.push(0, 10, "A" + std::to_string(i));
    queue.push(1, 10, "B" + std::to_string(i));
  }
  EXPECT_EQ(drain(queue), (std::vector<std::string>{"A0", "B0", "A1", "A2",
                                                    "B1", "A3", "B2", "B3"}));
}

TEST(NicFairQueueTest, ReweightReachesLiveNodeQueues) {
  // The regression: set_weight() after a node queue already exists must
  // propagate into it, not only into queues created later. One tenant-tagged
  // message materializes node 0's queue; the reweight lands afterwards; the
  // following burst must drain at the new 4:1 ratio.
  sim::Simulator sim;
  net::NetworkConfig ncfg;
  ncfg.num_nodes = 2;
  net::Network network(sim, ncfg);
  NicFairQueue nic(sim, network);
  network.set_send_scheduler(&nic);

  std::vector<std::string> delivered;
  const auto send = [&](net::TenantId tenant, const std::string& label) {
    network.send(net::Message{0, 1, 1000, net::TrafficClass::kClientServer,
                              [&delivered, label]() {
                                delivered.push_back(label);
                              },
                              tenant});
  };

  sim.schedule_at(sim::milliseconds(1), [&]() { send(0, "warm"); },
                  "test.warm");
  sim.schedule_at(sim::milliseconds(5), [&]() { nic.set_weight(0, 4.0); },
                  "test.reweight");
  sim.schedule_at(
      sim::milliseconds(10),
      [&]() {
        for (int i = 0; i < 4; ++i) {
          send(0, "a" + std::to_string(i));
          send(1, "b" + std::to_string(i));
        }
      },
      "test.burst");
  sim.run();

  EXPECT_EQ(delivered,
            (std::vector<std::string>{"warm", "a0", "a1", "a2", "b0", "a3",
                                      "b1", "b2", "b3"}));
  EXPECT_EQ(nic.messages_scheduled(), 9U);
}

TEST(DiskFairQueueTest, ReweightReachesLiveServerQueues) {
  // Same regression at the disk service point: a warm-up read creates
  // server 0's live queue, the reweight follows, and the burst of equal-cost
  // reads must serve weight-4 tenant 7 ahead of tenant 8.
  sim::Simulator sim;
  net::NetworkConfig ncfg;
  ncfg.num_nodes = 2;  // server node 0, client node 1
  net::Network network(sim, ncfg);
  pfs::Pfs pfs(sim, network, std::vector<net::NodeId>{0},
               storage::DiskConfig{});
  DiskFairQueue disk(sim);
  pfs.server(0).set_read_scheduler(&disk);

  pfs::FileMeta meta;
  meta.name = "f";
  meta.strip_size = 64;
  meta.size_bytes = 8 * 64;
  std::vector<std::byte> data(meta.size_bytes, std::byte{0x5a});
  const pfs::FileId f =
      pfs.create_file(meta, std::make_unique<pfs::RoundRobinLayout>(1), &data);

  std::vector<std::uint64_t> served;
  const auto read = [&](net::TenantId tenant, std::uint64_t strip) {
    pfs.server(0).serve_read(
        f, strip, 0, 64, /*requester=*/1, net::TrafficClass::kClientServer,
        [&served, strip](const pfs::StripBuffer&) { served.push_back(strip); },
        tenant);
  };

  sim.schedule_at(sim::milliseconds(1), [&]() { read(7, 0); }, "test.warm");
  sim.schedule_at(sim::milliseconds(5), [&]() { disk.set_weight(7, 4.0); },
                  "test.reweight");
  sim.schedule_at(
      sim::milliseconds(10),
      [&]() {
        // Tenant 7 reads strips 0-3, tenant 8 strips 4-7, interleaved.
        for (std::uint64_t i = 0; i < 4; ++i) {
          read(7, i);
          read(8, 4 + i);
        }
      },
      "test.burst");
  sim.run();

  EXPECT_EQ(served, (std::vector<std::uint64_t>{0, 0, 1, 2, 4, 3, 5, 6, 7}));
  EXPECT_EQ(disk.reads_scheduled(), 9U);
}

TEST(WeightedFairQueueTest, MoveOnlyItemsSupported) {
  // The NIC queue holds net::Message (move-only InplaceFn payloads); make
  // sure the heap never requires copies.
  struct MoveOnly {
    explicit MoveOnly(int v) : value(v) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    MoveOnly(const MoveOnly&) = delete;
    MoveOnly& operator=(const MoveOnly&) = delete;
    int value;
  };
  WeightedFairQueue<MoveOnly> queue;
  queue.push(0, 1, MoveOnly{7});
  queue.push(1, 1, MoveOnly{9});
  EXPECT_EQ(queue.pop().value, 7);
  EXPECT_EQ(queue.pop().value, 9);
}

}  // namespace
}  // namespace das::traffic
