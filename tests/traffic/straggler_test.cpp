// Straggler-scheduler behaviour through the full engine: two storage
// servers are slowed via ClusterConfig's straggler injection and the
// per-tenant SLO quantiles are compared with mitigation off and on. The
// runs are deterministic, so these are exact regressions, not statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "pfs/layout.hpp"
#include "pfs/migrate.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"
#include "simkit/time.hpp"
#include "traffic/engine.hpp"
#include "traffic/straggler.hpp"

namespace das::traffic {
namespace {

TrafficConfig slow_server_config() {
  TrafficConfig config;
  config.cluster.straggler_count = 2;
  config.cluster.straggler_slowdown = 32.0;
  config.arrivals.tenants = 32;
  config.arrivals.jobs_per_tenant = 8;
  config.arrivals.rate_hz = 3.0;
  config.arrivals.job_bytes = 4ULL << 20;
  config.arrivals.strip_bytes = 1ULL << 20;
  config.arrivals.datasets = 2;
  config.arrivals.dataset_strips = 512;
  config.replication = 3;
  return config;
}

TEST(StragglerTest, HedgingCutsTailLatencyUnderSlowServers) {
  TrafficConfig off = slow_server_config();
  const TrafficReport baseline = run_traffic(off);

  TrafficConfig on = slow_server_config();
  on.straggler.hedge = true;
  const TrafficReport hedged = run_traffic(on);

  ASSERT_EQ(baseline.total.jobs_completed, hedged.total.jobs_completed);
  EXPECT_EQ(baseline.hedges_issued, 0u);
  EXPECT_GT(hedged.hedges_issued, 0u);
  EXPECT_GT(hedged.hedges_won, 0u);
  EXPECT_GT(hedged.wasted_bytes, 0u);  // losing copies are accounted
  EXPECT_LT(hedged.total.sojourn.summary().p99,
            baseline.total.sojourn.summary().p99);
}

TEST(StragglerTest, ReroutingAvoidsSlowPrimaries) {
  TrafficConfig on = slow_server_config();
  on.straggler.reroute = true;
  const TrafficReport rerouted = run_traffic(on);

  EXPECT_GT(rerouted.reroutes, 0u);
  EXPECT_EQ(rerouted.hedges_issued, 0u);
  // Re-routing duplicates nothing, so no bytes are wasted.
  EXPECT_EQ(rerouted.wasted_bytes, 0u);

  const TrafficReport baseline = run_traffic(slow_server_config());
  EXPECT_LT(rerouted.total.sojourn.summary().p99,
            baseline.total.sojourn.summary().p99);
}

TEST(StragglerTest, NoReplicasMeansNoMitigation) {
  TrafficConfig on = slow_server_config();
  on.replication = 1;  // no replica holders to hedge or re-route to
  on.straggler.hedge = true;
  on.straggler.reroute = true;
  const TrafficReport report = run_traffic(on);
  EXPECT_GT(report.reads_issued, 0u);
  EXPECT_EQ(report.hedges_issued, 0u);
  EXPECT_EQ(report.reroutes, 0u);
  EXPECT_EQ(report.total.jobs_completed,
            32u * 8u);  // still completes, just unmitigated
}

TEST(StragglerTest, HealthyClusterHedgesRarelyAndStaysCorrect) {
  TrafficConfig on = slow_server_config();
  on.cluster.straggler_count = 0;  // nobody is actually slow
  on.straggler.hedge = true;
  on.straggler.reroute = true;
  const TrafficReport report = run_traffic(on);
  EXPECT_EQ(report.total.jobs_completed, 32u * 8u);
  // With a uniform cluster the median-based timer should fire for at most a
  // small fraction of reads (transient queueing only).
  EXPECT_LT(report.hedges_issued, report.reads_issued / 4);
}

/// Direct-scheduler fixture: 4 storage servers + 1 client over a plain Pfs,
/// so per-server latency history can be shaped read by read (bursts to one
/// server serialize at its disk and inflate its observed latency).
class StragglerSchedulerFixture : public ::testing::Test {
 protected:
  void build(const StragglerConfig& config,
             std::unique_ptr<pfs::Layout> layout) {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 5;
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<pfs::Pfs>(sim_, *network_,
                                      std::vector<net::NodeId>{0, 1, 2, 3},
                                      storage::DiskConfig{});
    pfs::FileMeta meta;
    meta.name = "f";
    meta.strip_size = 64;
    meta.size_bytes = 8 * 64;
    data_.assign(meta.size_bytes, std::byte{0x7e});
    file_ = pfs_->create_file(meta, std::move(layout), &data_);
    sched_ = std::make_unique<StragglerScheduler>(sim_, *network_, *pfs_,
                                                  config);
  }

  /// Issue `count` reads of `strip` in one event at `when`.
  void reads_at(sim::SimTime when, std::uint64_t strip, std::uint32_t count) {
    sim_.schedule_at(
        when,
        [this, strip, count]() {
          for (std::uint32_t i = 0; i < count; ++i) {
            sched_->read_strip(/*client=*/4, /*tenant=*/0, file_, strip,
                               [this]() { ++completions_; });
          }
        },
        "test.reads");
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<pfs::Pfs> pfs_;
  std::unique_ptr<StragglerScheduler> sched_;
  pfs::FileId file_ = pfs::kInvalidFile;
  std::vector<std::byte> data_;
  std::uint32_t completions_ = 0;
};

TEST_F(StragglerSchedulerFixture, RerouteSkipsColdReplicaForMeasuredFastOne) {
  // The cold-server bias regression: a never-sampled holder must score the
  // global median, not zero. Strip 0's holders are {0, 1, 2}; server 0 is
  // made measurably slow, server 1 measurably fast, and server 2 is never
  // sampled. The reroute must land on the measured-fast server 1 — scoring
  // the cold server 2 at 0.0 would make it win every pick.
  StragglerConfig config;
  config.reroute = true;
  config.reroute_multiplier = 3.0;
  config.min_samples = 8;
  build(config, std::make_unique<pfs::ReplicatedRoundRobinLayout>(4, 3));

  // Server 1: six spaced single reads, each at the uncontended latency.
  for (std::uint32_t i = 0; i < 6; ++i) {
    reads_at(sim::milliseconds(10 * (i + 1)), /*strip=*/1, 1);
  }
  // Server 3: six bursts of four, pushing the global median above the
  // uncontended latency (so the cold server's seed is clearly beaten by a
  // genuinely fast EWMA).
  for (std::uint32_t b = 0; b < 6; ++b) {
    reads_at(sim::milliseconds(100 + 20 * b), /*strip=*/3, 4);
  }
  // Server 0: one burst of sixteen; the queueing ramp drives its EWMA far
  // past reroute_multiplier x median.
  reads_at(sim::milliseconds(400), /*strip=*/0, 16);
  // The probe: a read of strip 0 against the warmed-up history.
  reads_at(sim::milliseconds(500), /*strip=*/0, 1);
  sim_.run();

  EXPECT_EQ(completions_, 47U);
  EXPECT_EQ(sched_->reads_issued(), 47U);
  EXPECT_EQ(sched_->reroutes(), 1U);
  // The rerouted read went to server 1, not the cold server 2: server 2
  // still has no samples, so its EWMA is untouched.
  EXPECT_EQ(sched_->server_ewma(2), 0.0);
  EXPECT_GT(sched_->server_ewma(1), 0.0);
  EXPECT_GT(sched_->server_ewma(0), 3.0 * sched_->server_ewma(1));
}

TEST_F(StragglerSchedulerFixture, HedgeUsesHolderSnapshotAcrossMigration) {
  // The hedge holder-snapshot regression: a read issued just before a
  // migration commits its strip must hedge against the holders it was issued
  // under. Strip 0's prior holders are {0, 1}; the migration to
  // grouped(4,r=2) commits strip 0 immediately (server 0 already has it),
  // leaving the live holder set {0} — resolving holders at fire time would
  // find nobody to hedge to, and the read would sit behind server 0's queue.
  // The snapshot still names server 1, whose retired copy must serve.
  StragglerConfig config;
  config.hedge = true;
  config.min_samples = 4;
  build(config, std::make_unique<pfs::ReplicatedRoundRobinLayout>(4, 2));
  pfs::LayoutMigrator migrator(sim_, *pfs_);

  // Warm-up: one spaced read per strip seeds the latency histogram; each
  // completes well under the 2 ms hedge floor, so no warm-up hedges fire.
  for (std::uint64_t s = 0; s < 8; ++s) {
    reads_at(sim::milliseconds(10 * (s + 1)), s, 1);
  }

  // Flood server 0's disk with untagged reads so the probe's primary reply
  // is ~15 ms out — far beyond the hedge timer.
  sim_.schedule_at(
      sim::milliseconds(200),
      [this]() {
        for (int i = 0; i < 30; ++i) {
          pfs_->server(0).serve_read(
              file_, 0, 0, 64, /*requester=*/4,
              net::TrafficClass::kClientServer,
              [](const pfs::StripBuffer&) {}, net::kNoTenant);
        }
      },
      "test.flood");
  // The probe snapshots holders {0, 1} and queues behind the flood.
  reads_at(sim::milliseconds(200) + sim::microseconds(10), /*strip=*/0, 1);
  // The migration begins after the probe is in flight and retires server 1's
  // replica of strip 0 the moment the strip commits.
  sim_.schedule_at(
      sim::milliseconds(200) + sim::microseconds(20),
      [this, &migrator]() {
        pfs::MigrateOptions options;
        options.strips_per_round = 1;
        migrator.migrate(file_, std::make_unique<pfs::GroupedLayout>(4, 2),
                         options, nullptr);
      },
      "test.migrate");
  sim_.run();

  EXPECT_EQ(completions_, 9U);
  EXPECT_EQ(sched_->hedges_issued(), 1U);
  // The hedge to server 1's retired copy beat the flooded primary, whose
  // late reply is the wasted transfer.
  EXPECT_EQ(sched_->hedges_won(), 1U);
  EXPECT_EQ(sched_->wasted_bytes(), 64U);
  EXPECT_FALSE(migrator.busy());
  EXPECT_EQ(pfs_->gather_bytes(file_), data_);
}

}  // namespace
}  // namespace das::traffic
