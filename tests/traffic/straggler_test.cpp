// Straggler-scheduler behaviour through the full engine: two storage
// servers are slowed via ClusterConfig's straggler injection and the
// per-tenant SLO quantiles are compared with mitigation off and on. The
// runs are deterministic, so these are exact regressions, not statistics.
#include <gtest/gtest.h>

#include "traffic/engine.hpp"

namespace das::traffic {
namespace {

TrafficConfig slow_server_config() {
  TrafficConfig config;
  config.cluster.straggler_count = 2;
  config.cluster.straggler_slowdown = 32.0;
  config.arrivals.tenants = 32;
  config.arrivals.jobs_per_tenant = 8;
  config.arrivals.rate_hz = 3.0;
  config.arrivals.job_bytes = 4ULL << 20;
  config.arrivals.strip_bytes = 1ULL << 20;
  config.arrivals.datasets = 2;
  config.arrivals.dataset_strips = 512;
  config.replication = 3;
  return config;
}

TEST(StragglerTest, HedgingCutsTailLatencyUnderSlowServers) {
  TrafficConfig off = slow_server_config();
  const TrafficReport baseline = run_traffic(off);

  TrafficConfig on = slow_server_config();
  on.straggler.hedge = true;
  const TrafficReport hedged = run_traffic(on);

  ASSERT_EQ(baseline.total.jobs_completed, hedged.total.jobs_completed);
  EXPECT_EQ(baseline.hedges_issued, 0u);
  EXPECT_GT(hedged.hedges_issued, 0u);
  EXPECT_GT(hedged.hedges_won, 0u);
  EXPECT_GT(hedged.wasted_bytes, 0u);  // losing copies are accounted
  EXPECT_LT(hedged.total.sojourn.summary().p99,
            baseline.total.sojourn.summary().p99);
}

TEST(StragglerTest, ReroutingAvoidsSlowPrimaries) {
  TrafficConfig on = slow_server_config();
  on.straggler.reroute = true;
  const TrafficReport rerouted = run_traffic(on);

  EXPECT_GT(rerouted.reroutes, 0u);
  EXPECT_EQ(rerouted.hedges_issued, 0u);
  // Re-routing duplicates nothing, so no bytes are wasted.
  EXPECT_EQ(rerouted.wasted_bytes, 0u);

  const TrafficReport baseline = run_traffic(slow_server_config());
  EXPECT_LT(rerouted.total.sojourn.summary().p99,
            baseline.total.sojourn.summary().p99);
}

TEST(StragglerTest, NoReplicasMeansNoMitigation) {
  TrafficConfig on = slow_server_config();
  on.replication = 1;  // no replica holders to hedge or re-route to
  on.straggler.hedge = true;
  on.straggler.reroute = true;
  const TrafficReport report = run_traffic(on);
  EXPECT_GT(report.reads_issued, 0u);
  EXPECT_EQ(report.hedges_issued, 0u);
  EXPECT_EQ(report.reroutes, 0u);
  EXPECT_EQ(report.total.jobs_completed,
            32u * 8u);  // still completes, just unmitigated
}

TEST(StragglerTest, HealthyClusterHedgesRarelyAndStaysCorrect) {
  TrafficConfig on = slow_server_config();
  on.cluster.straggler_count = 0;  // nobody is actually slow
  on.straggler.hedge = true;
  on.straggler.reroute = true;
  const TrafficReport report = run_traffic(on);
  EXPECT_EQ(report.total.jobs_completed, 32u * 8u);
  // With a uniform cluster the median-based timer should fire for at most a
  // small fraction of reads (transient queueing only).
  EXPECT_LT(report.hedges_issued, report.reads_issued / 4);
}

}  // namespace
}  // namespace das::traffic
