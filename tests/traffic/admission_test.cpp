#include "traffic/admission.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace das::traffic {
namespace {

AdmissionConfig capacity(std::uint64_t bytes) {
  AdmissionConfig config;
  config.enabled = true;
  config.capacity_bytes = bytes;
  return config;
}

TEST(AdmissionTest, DisabledBucketAdmitsEverythingImmediately) {
  TokenBucket bucket{AdmissionConfig{}};  // enabled = false
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(bucket.submit(1ULL << 30, [] {}));
  }
  EXPECT_EQ(bucket.queued(), 0u);
  EXPECT_EQ(bucket.deferred_jobs(), 0u);
}

TEST(AdmissionTest, AdmitsUntilFullThenQueuesFifo) {
  TokenBucket bucket{capacity(100)};
  std::vector<int> admitted;

  EXPECT_TRUE(bucket.submit(60, [&] { admitted.push_back(0); }));
  EXPECT_TRUE(bucket.submit(40, [&] { admitted.push_back(1); }));
  EXPECT_EQ(bucket.tokens(), 0u);
  EXPECT_EQ(bucket.inflight_bytes(), 100u);

  EXPECT_FALSE(bucket.submit(30, [&] { admitted.push_back(2); }));
  EXPECT_FALSE(bucket.submit(10, [&] { admitted.push_back(3); }));
  EXPECT_EQ(bucket.queued(), 2u);
  EXPECT_EQ(bucket.deferred_jobs(), 2u);
  EXPECT_EQ(admitted, (std::vector<int>{0, 1}));  // immediate admits ran

  bucket.release(40);
  // FIFO: the 30 B waiter goes first, and the 10 B one also fits.
  EXPECT_EQ(admitted, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(bucket.queued(), 0u);
  EXPECT_EQ(bucket.tokens(), 0u);
}

TEST(AdmissionTest, FifoHeadBlocksSmallerWaitersBehindIt) {
  TokenBucket bucket{capacity(100)};
  std::vector<int> admitted;
  EXPECT_TRUE(bucket.submit(90, [&] { admitted.push_back(0); }));
  EXPECT_FALSE(bucket.submit(50, [&] { admitted.push_back(1); }));
  EXPECT_FALSE(bucket.submit(5, [&] { admitted.push_back(2); }));

  bucket.release(90);
  // Head (50) fits and drains; 5 fits behind it. No reordering happened
  // before the release though: strict FIFO, no small-job overtaking.
  EXPECT_EQ(admitted, (std::vector<int>{0, 1, 2}));
}

TEST(AdmissionTest, OversizeJobRunsAloneWhenBucketIsIdle) {
  TokenBucket bucket{capacity(100)};
  // An idle bucket must admit a job larger than its whole capacity
  // (otherwise it could never run at all).
  bool ran = false;
  EXPECT_TRUE(bucket.submit(250, [&] { ran = true; }));
  EXPECT_EQ(bucket.tokens(), 0u);

  // While it is in flight nothing else gets in.
  bool second = false;
  EXPECT_FALSE(bucket.submit(1, [&] { second = true; }));
  bucket.release(250);
  EXPECT_TRUE(second);
  EXPECT_EQ(bucket.tokens(), 99u);
}

TEST(AdmissionTest, OversizeJobWaitsForFullBucket) {
  TokenBucket bucket{capacity(100)};
  EXPECT_TRUE(bucket.submit(10, [] {}));
  bool ran = false;
  EXPECT_FALSE(bucket.submit(250, [&] { ran = true; }));
  bucket.release(10);  // bucket completely full again -> oversize admitted
  EXPECT_TRUE(ran);
}

TEST(AdmissionTest, TracksPeaks) {
  TokenBucket bucket{capacity(100)};
  EXPECT_TRUE(bucket.submit(80, [] {}));
  EXPECT_FALSE(bucket.submit(80, [] {}));
  EXPECT_FALSE(bucket.submit(80, [] {}));
  EXPECT_EQ(bucket.max_inflight_bytes(), 80u);
  EXPECT_EQ(bucket.max_queued(), 2u);
  bucket.release(80);
  bucket.release(80);
  bucket.release(80);
  EXPECT_EQ(bucket.tokens(), 100u);
  EXPECT_EQ(bucket.max_queued(), 2u);
}

}  // namespace
}  // namespace das::traffic
