#include "net/nic.hpp"

#include <gtest/gtest.h>

namespace das::net {
namespace {

constexpr double kBw = 100.0 * 1024 * 1024;  // 100 MiB/s

TEST(NicTest, EgressSerializationTime) {
  Nic nic(kBw);
  const auto done = nic.reserve_egress(0, 100 * 1024 * 1024);
  EXPECT_EQ(done, sim::seconds(1));
}

TEST(NicTest, BackToBackEgressQueues) {
  Nic nic(kBw);
  nic.reserve_egress(0, 50 * 1024 * 1024);            // busy [0, 0.5)
  const auto done = nic.reserve_egress(0, 50 * 1024 * 1024);
  EXPECT_EQ(done, sim::seconds(1));  // second waits for the first
}

TEST(NicTest, EgressIdleGapIsNotCharged) {
  Nic nic(kBw);
  nic.reserve_egress(0, 100 * 1024 * 1024);
  const auto done = nic.reserve_egress(sim::seconds(10), 100 * 1024 * 1024);
  EXPECT_EQ(done, sim::seconds(11));
  EXPECT_EQ(nic.egress_busy(), sim::seconds(2));  // only transfer time
}

TEST(NicTest, FullDuplexDirectionsAreIndependent) {
  Nic nic(kBw);
  nic.reserve_egress(0, 100 * 1024 * 1024);
  const auto in_done = nic.reserve_ingress(0, 100 * 1024 * 1024);
  EXPECT_EQ(in_done, sim::seconds(1));  // not delayed by egress
}

TEST(NicTest, ByteCounters) {
  Nic nic(kBw);
  nic.reserve_egress(0, 1000);
  nic.reserve_egress(0, 500);
  nic.reserve_ingress(0, 42);
  EXPECT_EQ(nic.bytes_sent(), 1500U);
  EXPECT_EQ(nic.bytes_received(), 42U);
}

TEST(NicTest, ZeroByteTransferTakesNoTime) {
  Nic nic(kBw);
  EXPECT_EQ(nic.reserve_egress(7, 0), 7);
}

TEST(NicTest, OneByteTransferTakesNonZeroTime) {
  Nic nic(kBw);
  EXPECT_GT(nic.reserve_egress(0, 1), 0);
}

TEST(NicDeathTest, NonPositiveBandwidthAborts) {
  EXPECT_DEATH(Nic(0.0), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::net
