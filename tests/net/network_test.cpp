#include "net/network.hpp"

#include <gtest/gtest.h>

#include "simkit/simulator.hpp"

namespace das::net {
namespace {

NetworkConfig test_config(std::uint32_t nodes) {
  NetworkConfig cfg;
  cfg.num_nodes = nodes;
  cfg.nic_bandwidth_bps = 1024 * 1024;  // 1 MiB/s: easy arithmetic
  cfg.wire_latency = sim::milliseconds(1);
  cfg.control_overhead_bytes = 0;  // exact payload timing in these tests
  return cfg;
}

TEST(NetworkTest, DeliveryTimeIsSerializationPlusLatency) {
  sim::Simulator s;
  Network net(s, test_config(2));
  sim::SimTime delivered = -1;
  net.send(Message{0, 1, 1024 * 1024, TrafficClass::kClientServer,
                   [&] { delivered = s.now(); }});
  s.run();
  // 1 s sender egress + 1 ms wire + 1 s receiver ingress.
  EXPECT_EQ(delivered, sim::seconds(2) + sim::milliseconds(1));
}

TEST(NetworkTest, LoopbackPaysOnlyLatency) {
  sim::Simulator s;
  Network net(s, test_config(2));
  sim::SimTime delivered = -1;
  net.send(Message{1, 1, 1024 * 1024, TrafficClass::kControl,
                   [&] { delivered = s.now(); }});
  s.run();
  EXPECT_EQ(delivered, sim::milliseconds(1));
}

TEST(NetworkTest, IncastSerializesAtReceiver) {
  sim::Simulator s;
  Network net(s, test_config(3));
  sim::SimTime first = -1, second = -1;
  net.send(Message{0, 2, 1024 * 1024, TrafficClass::kClientServer,
                   [&] { first = s.now(); }});
  net.send(Message{1, 2, 1024 * 1024, TrafficClass::kClientServer,
                   [&] { second = s.now(); }});
  s.run();
  // Both arrive at ~1s + latency; the receiver NIC serializes the second.
  EXPECT_EQ(first, sim::seconds(2) + sim::milliseconds(1));
  EXPECT_EQ(second, sim::seconds(3) + sim::milliseconds(1));
}

TEST(NetworkTest, SendersSerializeTheirOwnEgress) {
  sim::Simulator s;
  Network net(s, test_config(3));
  sim::SimTime to1 = -1, to2 = -1;
  net.send(Message{0, 1, 1024 * 1024, TrafficClass::kClientServer,
                   [&] { to1 = s.now(); }});
  net.send(Message{0, 2, 1024 * 1024, TrafficClass::kClientServer,
                   [&] { to2 = s.now(); }});
  s.run();
  EXPECT_EQ(to1, sim::seconds(2) + sim::milliseconds(1));
  // Second message leaves only after the first cleared node 0's egress.
  EXPECT_EQ(to2, sim::seconds(3) + sim::milliseconds(1));
}

TEST(NetworkTest, TrafficClassAccounting) {
  sim::Simulator s;
  Network net(s, test_config(2));
  net.send(Message{0, 1, 100, TrafficClass::kClientServer, nullptr});
  net.send(Message{0, 1, 200, TrafficClass::kServerServer, nullptr});
  net.send(Message{0, 1, 300, TrafficClass::kServerServer, nullptr});
  net.send_control(1, 0, nullptr);
  s.run();
  EXPECT_EQ(net.bytes_delivered(TrafficClass::kClientServer), 100U);
  EXPECT_EQ(net.bytes_delivered(TrafficClass::kServerServer), 500U);
  EXPECT_EQ(net.bytes_delivered(TrafficClass::kControl), 0U);
  EXPECT_EQ(net.messages_delivered(TrafficClass::kServerServer), 2U);
  EXPECT_EQ(net.messages_delivered(TrafficClass::kControl), 1U);
}

TEST(NetworkTest, ControlOverheadDelaysWire) {
  sim::Simulator s;
  NetworkConfig cfg = test_config(2);
  cfg.control_overhead_bytes = 1024 * 1024;  // grotesque, to be visible
  Network net(s, cfg);
  sim::SimTime delivered = -1;
  net.send_control(0, 1, [&] { delivered = s.now(); });
  s.run();
  EXPECT_EQ(delivered, sim::seconds(2) + sim::milliseconds(1));
}

TEST(NetworkTest, LatencyHistogramRecordsEveryMessage) {
  sim::Simulator s;
  Network net(s, test_config(2));
  net.send(Message{0, 1, 1024, TrafficClass::kControl, nullptr});
  net.send(Message{1, 0, 1024, TrafficClass::kControl, nullptr});
  s.run();
  EXPECT_EQ(net.latency_histogram().count(), 2U);
  EXPECT_GT(net.latency_histogram().min(), 0.0);
}

TEST(NetworkTest, MessageWithoutCallbackStillMovesBytes) {
  sim::Simulator s;
  Network net(s, test_config(2));
  net.send(Message{0, 1, 4096, TrafficClass::kClientServer, nullptr});
  s.run();
  EXPECT_EQ(net.nic(0).bytes_sent(), 4096U);
  EXPECT_EQ(net.nic(1).bytes_received(), 4096U);
}

TEST(NetworkDeathTest, InvalidNodeAborts) {
  sim::Simulator s;
  Network net(s, test_config(2));
  EXPECT_DEATH(net.send(Message{0, 9, 1, TrafficClass::kControl, nullptr}),
               "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::net
