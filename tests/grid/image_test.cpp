#include "grid/image.hpp"

#include <gtest/gtest.h>

namespace das::grid {
namespace {

TEST(ImageTest, DimensionsAndDeterminism) {
  ImageOptions opt;
  opt.width = 33;
  opt.height = 17;
  const Grid<float> a = generate_image(opt);
  EXPECT_EQ(a.width(), 33U);
  EXPECT_EQ(a.height(), 17U);
  EXPECT_EQ(a, generate_image(opt));
}

TEST(ImageTest, BlobsRaiseIntensityAboveBackground) {
  ImageOptions opt;
  opt.noise_stddev = 0.0;
  const Grid<float> img = generate_image(opt);
  float hi = img[0];
  for (std::size_t i = 0; i < img.size(); ++i) hi = std::max(hi, img[i]);
  EXPECT_GT(hi, static_cast<float>(opt.background) * 2);
}

TEST(ImageTest, NoiselessBlobFreeImageIsFlat) {
  ImageOptions opt;
  opt.num_blobs = 0;
  opt.noise_stddev = 0.0;
  const Grid<float> img = generate_image(opt);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_FLOAT_EQ(img[i], static_cast<float>(opt.background));
  }
}

TEST(ImpulseNoiseTest, RateIsApproximate) {
  const Grid<float> img =
      generate_impulse_noise(200, 200, 10.0F, 255.0F, 0.05, 7);
  std::size_t impulses = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    ASSERT_TRUE(img[i] == 10.0F || img[i] == 255.0F);
    if (img[i] == 255.0F) ++impulses;
  }
  const double rate = static_cast<double>(impulses) / img.size();
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(ImpulseNoiseTest, ZeroRateIsClean) {
  const Grid<float> img = generate_impulse_noise(10, 10, 1.0F, 9.0F, 0.0, 1);
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_FLOAT_EQ(img[i], 1.0F);
}

}  // namespace
}  // namespace das::grid
