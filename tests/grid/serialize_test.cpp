#include "grid/serialize.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "grid/dem.hpp"

namespace das::grid {
namespace {

TEST(SerializeTest, SizeIsElementsTimesFour) {
  const Grid<float> g(7, 3);
  EXPECT_EQ(serialized_size(g), 7U * 3 * 4);
}

TEST(SerializeTest, RoundTripPreservesContent) {
  DemOptions opt;
  opt.width = 16;
  opt.height = 12;
  const Grid<float> g = generate_dem(opt);
  const auto bytes = to_bytes(g);
  EXPECT_EQ(bytes.size(), serialized_size(g));
  EXPECT_EQ(from_bytes(bytes, 16, 12), g);
}

TEST(SerializeTest, ElementOrderIsRowMajor) {
  Grid<float> g(2, 2);
  g.at(0, 0) = 1.0F;
  g.at(1, 0) = 2.0F;
  g.at(0, 1) = 3.0F;
  g.at(1, 1) = 4.0F;
  const auto bytes = to_bytes(g);
  float values[4];
  std::memcpy(values, bytes.data(), sizeof values);
  EXPECT_FLOAT_EQ(values[0], 1.0F);
  EXPECT_FLOAT_EQ(values[1], 2.0F);
  EXPECT_FLOAT_EQ(values[2], 3.0F);
  EXPECT_FLOAT_EQ(values[3], 4.0F);
}

TEST(SerializeDeathTest, SizeMismatchAborts) {
  const std::vector<std::byte> bytes(12);
  EXPECT_DEATH(from_bytes(bytes, 2, 2), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::grid
