#include "grid/dem.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace das::grid {
namespace {

TEST(DemTest, DimensionsMatchOptions) {
  DemOptions opt;
  opt.width = 37;
  opt.height = 21;
  const Grid<float> dem = generate_dem(opt);
  EXPECT_EQ(dem.width(), 37U);
  EXPECT_EQ(dem.height(), 21U);
}

TEST(DemTest, DeterministicForSeed) {
  DemOptions opt;
  opt.seed = 99;
  EXPECT_EQ(generate_dem(opt), generate_dem(opt));
}

TEST(DemTest, DifferentSeedsDifferentTerrain) {
  DemOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_GT(max_abs_diff(generate_dem(a), generate_dem(b)), 0.0);
}

TEST(DemTest, TerrainHasRelief) {
  const Grid<float> dem = generate_dem(DemOptions{});
  float lo = dem[0], hi = dem[0];
  for (std::size_t i = 0; i < dem.size(); ++i) {
    lo = std::min(lo, dem[i]);
    hi = std::max(hi, dem[i]);
  }
  EXPECT_GT(hi - lo, 100.0F);  // relief default is 1000
}

TEST(RampTest, StrictlyDecreasingTowardSouthEast) {
  const Grid<float> r = generate_ramp(8, 8);
  for (std::uint32_t y = 0; y + 1 < 8; ++y) {
    for (std::uint32_t x = 0; x + 1 < 8; ++x) {
      EXPECT_GT(r.at(x, y), r.at(x + 1, y + 1));
      EXPECT_GT(r.at(x, y), r.at(x + 1, y));
      EXPECT_GT(r.at(x, y), r.at(x, y + 1));
    }
  }
}

TEST(RampTest, SlopesAreHonored) {
  const Grid<float> r = generate_ramp(4, 4, 2.0, 3.0);
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(r.at(1, 0), -2.0F);
  EXPECT_FLOAT_EQ(r.at(0, 1), -3.0F);
  EXPECT_FLOAT_EQ(r.at(2, 2), -10.0F);
}

TEST(ConeTest, CentreIsTheMinimum) {
  const Grid<float> c = generate_cone(9, 9);
  EXPECT_FLOAT_EQ(c.at(4, 4), 0.0F);
  for (std::uint32_t y = 0; y < 9; ++y) {
    for (std::uint32_t x = 0; x < 9; ++x) {
      if (x == 4 && y == 4) continue;
      EXPECT_GT(c.at(x, y), 0.0F);
    }
  }
}

TEST(ConeTest, RadiallySymmetric) {
  const Grid<float> c = generate_cone(9, 9);
  EXPECT_FLOAT_EQ(c.at(0, 4), c.at(8, 4));
  EXPECT_FLOAT_EQ(c.at(4, 0), c.at(4, 8));
  EXPECT_FLOAT_EQ(c.at(0, 0), c.at(8, 8));
}

}  // namespace
}  // namespace das::grid
