#include "grid/grid.hpp"

#include <gtest/gtest.h>

namespace das::grid {
namespace {

TEST(GridTest, ConstructionAndFillValue) {
  const Grid<float> g(4, 3, 2.5F);
  EXPECT_EQ(g.width(), 4U);
  EXPECT_EQ(g.height(), 3U);
  EXPECT_EQ(g.size(), 12U);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 2.5F);
}

TEST(GridTest, RowMajorAddressing) {
  Grid<int> g(3, 2);
  g.at(2, 1) = 42;
  EXPECT_EQ(g[1 * 3 + 2], 42);
  EXPECT_EQ(g.row(1)[2], 42);
}

TEST(GridTest, InBounds) {
  const Grid<int> g(3, 2);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(2, 1));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, 2));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(GridTest, FillOverwritesEverything) {
  Grid<int> g(2, 2, 1);
  g.fill(9);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 9);
}

TEST(GridTest, SliceRowsCopiesTheRange) {
  Grid<int> g(2, 4);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 2; ++x) g.at(x, y) = static_cast<int>(y);
  }
  const Grid<int> s = g.slice_rows(1, 3);
  EXPECT_EQ(s.height(), 2U);
  EXPECT_EQ(s.at(0, 0), 1);
  EXPECT_EQ(s.at(1, 1), 2);
}

TEST(GridTest, PasteRowsWritesBack) {
  Grid<int> g(2, 4, 0);
  Grid<int> patch(2, 2, 7);
  g.paste_rows(1, patch);
  EXPECT_EQ(g.at(0, 0), 0);
  EXPECT_EQ(g.at(0, 1), 7);
  EXPECT_EQ(g.at(1, 2), 7);
  EXPECT_EQ(g.at(0, 3), 0);
}

TEST(GridTest, SlicePasteRoundTrip) {
  Grid<int> g(3, 5);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = static_cast<int>(i);
  Grid<int> copy = g;
  copy.paste_rows(2, g.slice_rows(2, 4));
  EXPECT_EQ(copy, g);
}

TEST(GridTest, EqualityComparesShapeAndContent) {
  Grid<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 2;
  EXPECT_FALSE(a == b);
  const Grid<int> c(4, 1, 1);
  EXPECT_FALSE(a == c);
}

TEST(GridTest, MaxAbsDiff) {
  Grid<float> a(2, 2, 0.0F), b(2, 2, 0.0F);
  b.at(0, 1) = -3.5F;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.5);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
}

TEST(GridDeathTest, BadSliceRangeAborts) {
  const Grid<int> g(2, 2);
  EXPECT_DEATH(g.slice_rows(1, 1), "DAS_REQUIRE");
  EXPECT_DEATH(g.slice_rows(0, 3), "DAS_REQUIRE");
}

TEST(GridDeathTest, PasteOutOfRangeAborts) {
  Grid<int> g(2, 2);
  const Grid<int> patch(2, 2);
  EXPECT_DEATH(g.paste_rows(1, patch), "DAS_REQUIRE");
}

TEST(GridDeathTest, ShapeMismatchDiffAborts) {
  const Grid<float> a(2, 2), b(3, 2);
  EXPECT_DEATH(max_abs_diff(a, b), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::grid
