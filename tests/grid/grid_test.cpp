#include "grid/grid.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace das::grid {
namespace {

TEST(GridTest, ConstructionAndFillValue) {
  const Grid<float> g(4, 3, 2.5F);
  EXPECT_EQ(g.width(), 4U);
  EXPECT_EQ(g.height(), 3U);
  EXPECT_EQ(g.size(), 12U);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 2.5F);
}

TEST(GridTest, RowMajorAddressing) {
  Grid<int> g(3, 2);
  g.at(2, 1) = 42;
  EXPECT_EQ(g[1 * 3 + 2], 42);
  EXPECT_EQ(g.row(1)[2], 42);
}

TEST(GridTest, InBounds) {
  const Grid<int> g(3, 2);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(2, 1));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, 2));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(GridTest, FillOverwritesEverything) {
  Grid<int> g(2, 2, 1);
  g.fill(9);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 9);
}

TEST(GridTest, SliceRowsCopiesTheRange) {
  Grid<int> g(2, 4);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 2; ++x) g.at(x, y) = static_cast<int>(y);
  }
  const Grid<int> s = g.slice_rows(1, 3);
  EXPECT_EQ(s.height(), 2U);
  EXPECT_EQ(s.at(0, 0), 1);
  EXPECT_EQ(s.at(1, 1), 2);
}

TEST(GridTest, PasteRowsWritesBack) {
  Grid<int> g(2, 4, 0);
  Grid<int> patch(2, 2, 7);
  g.paste_rows(1, patch);
  EXPECT_EQ(g.at(0, 0), 0);
  EXPECT_EQ(g.at(0, 1), 7);
  EXPECT_EQ(g.at(1, 2), 7);
  EXPECT_EQ(g.at(0, 3), 0);
}

TEST(GridTest, SlicePasteRoundTrip) {
  Grid<int> g(3, 5);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = static_cast<int>(i);
  Grid<int> copy = g;
  copy.paste_rows(2, g.slice_rows(2, 4));
  EXPECT_EQ(copy, g);
}

TEST(GridTest, EqualityComparesShapeAndContent) {
  Grid<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 2;
  EXPECT_FALSE(a == b);
  const Grid<int> c(4, 1, 1);
  EXPECT_FALSE(a == c);
}

TEST(GridTest, MaxAbsDiff) {
  Grid<float> a(2, 2, 0.0F), b(2, 2, 0.0F);
  b.at(0, 1) = -3.5F;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.5);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
}

// Widths around the SIMD lane boundaries: degenerate (1, 2), one short of /
// exactly / one past a 16-float (64-byte) lane group, and odd in-between
// sizes. Every allocation must start on a kGridAlignment boundary.
constexpr std::uint32_t kAlignmentWidths[] = {1,  2,  3,  7,  8,
                                              15, 16, 17, 31, 33};

TEST(GridAlignmentTest, StorageIs64ByteAligned) {
  for (const std::uint32_t width : kAlignmentWidths) {
    Grid<float> g(width, 3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.data()) % kGridAlignment, 0U)
        << "width " << width;
    EXPECT_TRUE(g.contiguous());
    EXPECT_EQ(g.stride(), width);
  }
}

TEST(GridAlignmentTest, PaddedRowsAllStartAligned) {
  for (const std::uint32_t width : kAlignmentWidths) {
    Grid<float> g = Grid<float>::padded(width, 4, 1.5F);
    EXPECT_GE(g.stride(), width);
    EXPECT_EQ(g.stride() % (kGridAlignment / sizeof(float)), 0U);
    EXPECT_EQ(g.size(), static_cast<std::size_t>(width) * 4);
    for (std::uint32_t y = 0; y < g.height(); ++y) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(y)) % kGridAlignment,
                0U)
          << "width " << width << " row " << y;
      for (std::uint32_t x = 0; x < width; ++x) {
        EXPECT_EQ(g.at(x, y), 1.5F);
      }
    }
  }
}

TEST(GridAlignmentTest, PaddedEqualsContiguousTwin) {
  Grid<float> dense(5, 3);
  Grid<float> padded = Grid<float>::padded(5, 3);
  float v = 0.0F;
  for (std::uint32_t y = 0; y < 3; ++y) {
    for (std::uint32_t x = 0; x < 5; ++x) {
      dense.at(x, y) = v;
      padded.at(x, y) = v;
      v += 0.25F;
    }
  }
  EXPECT_EQ(padded, dense);  // logical equality ignores padding
  EXPECT_EQ(dense, padded);
  EXPECT_DOUBLE_EQ(max_abs_diff(padded, dense), 0.0);
  padded.at(4, 2) = -1.0F;
  EXPECT_FALSE(padded == dense);
}

TEST(GridAlignmentTest, PaddedSliceAndPasteKeepLogicalContents) {
  Grid<float> padded = Grid<float>::padded(5, 4);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 5; ++x) {
      padded.at(x, y) = static_cast<float>(y * 5 + x);
    }
  }
  const Grid<float> slice = padded.slice_rows(1, 3);
  EXPECT_TRUE(slice.contiguous());  // slices are dense
  EXPECT_EQ(slice.at(0, 0), 5.0F);
  EXPECT_EQ(slice.at(4, 1), 14.0F);
  Grid<float> dst = Grid<float>::padded(5, 4, 0.0F);
  dst.paste_rows(1, slice);
  EXPECT_EQ(dst.at(4, 2), 14.0F);
  EXPECT_EQ(dst.at(0, 0), 0.0F);
}

TEST(GridAlignmentTest, WidthExactlyOneLaneGroupHasNoPadding) {
  constexpr std::uint32_t kLane = kGridAlignment / sizeof(float);  // 16
  const Grid<float> g = Grid<float>::padded(kLane, 2);
  EXPECT_EQ(g.stride(), kLane);
  EXPECT_TRUE(g.contiguous());
}

TEST(GridAlignmentDeathTest, ZeroDimensionAborts) {
  EXPECT_DEATH(Grid<float>(0, 3), "DAS_REQUIRE");
  EXPECT_DEATH(Grid<float>(3, 0), "DAS_REQUIRE");
  EXPECT_DEATH(Grid<float>::padded(0, 3), "DAS_REQUIRE");
}

// DAS_ASSERT guards compile out under NDEBUG; the Debug/ASan CI job keeps
// this armed.
#ifndef NDEBUG
TEST(GridAlignmentDeathTest, LinearViewsOfPaddedGridAbort) {
  Grid<float> g = Grid<float>::padded(5, 2);
  EXPECT_FALSE(g.contiguous());
  EXPECT_DEATH(g.data(), "DAS_ASSERT");
  EXPECT_DEATH(g[0], "DAS_ASSERT");
}
#endif

TEST(GridDeathTest, BadSliceRangeAborts) {
  const Grid<int> g(2, 2);
  EXPECT_DEATH(g.slice_rows(1, 1), "DAS_REQUIRE");
  EXPECT_DEATH(g.slice_rows(0, 3), "DAS_REQUIRE");
}

TEST(GridDeathTest, PasteOutOfRangeAborts) {
  Grid<int> g(2, 2);
  const Grid<int> patch(2, 2);
  EXPECT_DEATH(g.paste_rows(1, patch), "DAS_REQUIRE");
}

TEST(GridDeathTest, ShapeMismatchDiffAborts) {
  const Grid<float> a(2, 2), b(3, 2);
  EXPECT_DEATH(max_abs_diff(a, b), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::grid
