// Region-list math: construction validation (exact numbers in every
// rejection), strided normalization including negative strides, strip
// splitting at boundaries and past 4 GiB, wire-cost bookkeeping, and the
// coalescer's exact-union property under randomized inputs.
#include "pfs/region.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace das::pfs {
namespace {

FileMeta meta_of(std::uint64_t size, std::uint64_t strip) {
  FileMeta meta;
  meta.name = "region-test";
  meta.size_bytes = size;
  meta.strip_size = strip;
  return meta;
}

// --- Construction and validation -----------------------------------------

TEST(RegionListTest, FromRunsSortsAndSums) {
  const RegionList list =
      RegionList::from_runs({{300, 10}, {100, 20}, {200, 5}});
  ASSERT_EQ(list.runs().size(), 3U);
  EXPECT_EQ(list.runs()[0], (pfs::Run{100, 20}));
  EXPECT_EQ(list.runs()[1], (pfs::Run{200, 5}));
  EXPECT_EQ(list.runs()[2], (pfs::Run{300, 10}));
  EXPECT_EQ(list.total_bytes(), 35U);
  EXPECT_EQ(list.encoding(), RegionEncoding::kExplicit);
}

TEST(RegionListTest, ZeroLengthRunRejectedWithExactNumbers) {
  try {
    RegionList::from_runs({{100, 20}, {4096, 0}});
    FAIL() << "zero-length run must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4096"), std::string::npos)
        << "message must quote the offending offset: " << what;
  }
}

TEST(RegionListTest, OverlappingRunsRejectedWithExactNumbers) {
  try {
    RegionList::from_runs({{100, 50}, {120, 10}});
    FAIL() << "overlapping runs must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("100"), std::string::npos) << what;
    EXPECT_NE(what.find("120"), std::string::npos) << what;
  }
}

TEST(RegionListTest, AdjacentRunsAreLegal) {
  // Touching is not overlapping: [100,150) + [150,200).
  const RegionList list = RegionList::from_runs({{100, 50}, {150, 50}});
  EXPECT_EQ(list.runs().size(), 2U);
  EXPECT_EQ(list.total_bytes(), 100U);
}

TEST(RegionListTest, OffsetOverflowRejected) {
  EXPECT_THROW(RegionList::from_runs({{UINT64_MAX - 4, 8}}),
               std::invalid_argument);
}

TEST(RegionListTest, EmptyListIsEmpty) {
  const RegionList list = RegionList::from_runs({});
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.total_bytes(), 0U);
}

// --- Strided construction -------------------------------------------------

TEST(RegionListTest, StridedBuildsRegularRuns) {
  const RegionList list = RegionList::strided(1000, 64, 256, 4);
  ASSERT_EQ(list.runs().size(), 4U);
  EXPECT_EQ(list.runs()[0], (pfs::Run{1000, 64}));
  EXPECT_EQ(list.runs()[3], (pfs::Run{1000 + 3 * 256, 64}));
  EXPECT_EQ(list.encoding(), RegionEncoding::kStrided);
  EXPECT_EQ(list.total_bytes(), 4U * 64U);
}

TEST(RegionListTest, NegativeStrideNormalizesToAscending) {
  // Descending walk 1768, 1512, 1256, 1000 == ascending walk from 1000.
  const RegionList down = RegionList::strided(1768, 64, -256, 4);
  const RegionList up = RegionList::strided(1000, 64, 256, 4);
  EXPECT_EQ(down.runs(), up.runs());
  EXPECT_EQ(down.encoding(), RegionEncoding::kStrided);
}

TEST(RegionListTest, NegativeStrideUnderflowRejected) {
  // Third run would start at 100 - 2*256 < 0.
  EXPECT_THROW(RegionList::strided(100, 16, -256, 3), std::invalid_argument);
}

TEST(RegionListTest, StrideShorterThanRunRejected) {
  EXPECT_THROW(RegionList::strided(0, 128, 64, 2), std::invalid_argument);
}

TEST(RegionListTest, StridedCountZeroIsEmpty) {
  EXPECT_TRUE(RegionList::strided(1000, 64, 256, 0).empty());
}

TEST(RegionListTest, SubsetPreservesEncodingAndRuns) {
  const RegionList list = RegionList::strided(0, 16, 64, 10);
  const RegionList mid = list.subset(3, 7);
  ASSERT_EQ(mid.runs().size(), 4U);
  EXPECT_EQ(mid.runs()[0], (pfs::Run{3 * 64, 16}));
  EXPECT_EQ(mid.encoding(), RegionEncoding::kStrided);
}

// --- Wire-cost bookkeeping ------------------------------------------------

TEST(RegionListTest, RequestBytesByEncoding) {
  EXPECT_EQ(RegionList::request_bytes(RegionEncoding::kExplicit, 10),
            kListRequestFixedBytes + 10 * kListRunDescriptorBytes);
  EXPECT_EQ(RegionList::request_bytes(RegionEncoding::kStrided, 10),
            kListRequestFixedBytes + kListStridedDescriptorBytes);
  EXPECT_EQ(RegionList::reply_framing_bytes(7), 7 * kListReplyRunBytes);
}

TEST(RegionListTest, StridedEncodingIsFlatInRunCount) {
  // The whole point of the strided descriptor: 1 run or 10k runs, same
  // request size.
  EXPECT_EQ(RegionList::request_bytes(RegionEncoding::kStrided, 1),
            RegionList::request_bytes(RegionEncoding::kStrided, 10000));
}

// --- Strip splitting ------------------------------------------------------

TEST(SplitByStripTest, RunInsideOneStripStaysWhole) {
  const FileMeta meta = meta_of(1 << 20, 64 * 1024);
  const auto runs =
      split_by_strip(meta, RegionList::from_runs({{1000, 500}}));
  ASSERT_EQ(runs.size(), 1U);
  EXPECT_EQ(runs[0], (StripRun{0, 1000, 500}));
}

TEST(SplitByStripTest, StraddlingRunSplitsAtBoundary) {
  const std::uint64_t strip = 64 * 1024;
  const FileMeta meta = meta_of(1 << 20, strip);
  // 100 bytes before the strip 0/1 boundary, 200 after.
  const auto runs =
      split_by_strip(meta, RegionList::from_runs({{strip - 100, 300}}));
  ASSERT_EQ(runs.size(), 2U);
  EXPECT_EQ(runs[0], (StripRun{0, strip - 100, 100}));
  EXPECT_EQ(runs[1], (StripRun{1, 0, 200}));
}

TEST(SplitByStripTest, RunSpanningManyStripsSplitsPerStrip) {
  const std::uint64_t strip = 64 * 1024;
  const FileMeta meta = meta_of(1 << 20, strip);
  const auto runs =
      split_by_strip(meta, RegionList::from_runs({{strip / 2, 3 * strip}}));
  ASSERT_EQ(runs.size(), 4U);
  EXPECT_EQ(runs[0], (StripRun{0, strip / 2, strip / 2}));
  EXPECT_EQ(runs[1], (StripRun{1, 0, strip}));
  EXPECT_EQ(runs[2], (StripRun{2, 0, strip}));
  EXPECT_EQ(runs[3], (StripRun{3, 0, strip / 2}));
  std::uint64_t total = 0;
  for (const StripRun& r : runs) total += r.length;
  EXPECT_EQ(total, 3 * strip);
}

TEST(SplitByStripTest, RunsBeyondFourGiBKeepExactArithmetic) {
  // 4 GiB boundary: offsets no longer fit in 32 bits; strip indexes and
  // in-strip offsets must still be exact.
  const std::uint64_t strip = 64 * 1024;
  const std::uint64_t four_gib = 1ULL << 32;
  const FileMeta meta = meta_of(four_gib + (1ULL << 20), strip);
  const auto runs = split_by_strip(
      meta, RegionList::from_runs({{four_gib - 50, 100}}));
  ASSERT_EQ(runs.size(), 2U);
  EXPECT_EQ(runs[0].strip, (four_gib - 50) / strip);
  EXPECT_EQ(runs[0].offset_in_strip, strip - 50);
  EXPECT_EQ(runs[0].length, 50U);
  EXPECT_EQ(runs[1].strip, four_gib / strip);
  EXPECT_EQ(runs[1].offset_in_strip, 0U);
  EXPECT_EQ(runs[1].length, 50U);
}

TEST(SplitByStripTest, RunPastEofRejectedWithExactNumbers) {
  const FileMeta meta = meta_of(1000, 64 * 1024);
  try {
    split_by_strip(meta, RegionList::from_runs({{900, 200}}));
    FAIL() << "run past EOF must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("900"), std::string::npos) << what;
    EXPECT_NE(what.find("1000"), std::string::npos) << what;
  }
}

// --- Coalescer ------------------------------------------------------------

TEST(CoalesceTest, MergesAdjacentAndOverlapping) {
  const auto out = coalesce_runs(
      {{0, 100}, {100, 50}, {140, 100}, {500, 10}});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0], (Extent{0, 240}));
  EXPECT_EQ(out[1], (Extent{500, 10}));
}

TEST(CoalesceTest, UnsortedInputIsSorted) {
  const auto out = coalesce_runs({{500, 10}, {0, 100}, {50, 100}});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0], (Extent{0, 150}));
  EXPECT_EQ(out[1], (Extent{500, 10}));
}

TEST(CoalesceTest, EmptyAndSingleton) {
  EXPECT_TRUE(coalesce_runs({}).empty());
  const auto one = coalesce_runs({{42, 7}});
  ASSERT_EQ(one.size(), 1U);
  EXPECT_EQ(one[0], (Extent{42, 7}));
}

// Property: for random inputs the output covers exactly the union of the
// inputs (every input byte covered, nothing else), is sorted, and no two
// extents touch (maximal coalescing).
TEST(CoalesceTest, RandomizedExactUnionProperty) {
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<std::uint64_t> offset_dist(0, 2000);
  std::uniform_int_distribution<std::uint64_t> length_dist(1, 200);
  std::uniform_int_distribution<int> count_dist(1, 40);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Extent> input;
    const int n = count_dist(rng);
    for (int i = 0; i < n; ++i) {
      input.push_back(Extent{offset_dist(rng), length_dist(rng)});
    }
    std::vector<bool> covered(2300, false);
    for (const Extent& e : input) {
      for (std::uint64_t b = e.offset; b < e.offset + e.length; ++b) {
        covered[b] = true;
      }
    }

    const std::vector<Extent> out = coalesce_runs(input);
    std::vector<bool> out_covered(2300, false);
    std::uint64_t prev_end = 0;
    bool first = true;
    for (const Extent& e : out) {
      ASSERT_GT(e.length, 0U) << "trial " << trial;
      if (!first) {
        ASSERT_GT(e.offset, prev_end)
            << "trial " << trial << ": extents sorted and non-touching";
      }
      first = false;
      prev_end = e.offset + e.length;
      for (std::uint64_t b = e.offset; b < prev_end; ++b) {
        out_covered[b] = true;
      }
    }
    ASSERT_EQ(covered, out_covered) << "trial " << trial;
  }
}

}  // namespace
}  // namespace das::pfs
