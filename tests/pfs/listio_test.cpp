// End-to-end list I/O through the client/server pair: read_regions must
// deliver exactly the requested bytes (gathered through the packed reply),
// move only runs + modeled headers on the wire, coalesce adjacent runs into
// single disk extents, and — with a contiguous list — cost the same disk
// work as the classic whole-range path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "pfs/client.hpp"
#include "pfs/pfs.hpp"
#include "pfs/region.hpp"
#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class ListIoFixture : public ::testing::Test {
 protected:
  ListIoFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 6;  // 4 servers + 2 clients
    ncfg.nic_bandwidth_bps = 1024.0 * 1024;
    ncfg.wire_latency = sim::microseconds(100);
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
    client_ = std::make_unique<PfsClient>(sim_, *network_, *pfs_, 4);
  }

  /// A file whose byte i == i % 251 (easy to validate).
  FileId make_file(std::uint64_t size, std::uint64_t strip) {
    FileMeta meta;
    meta.name = "listio-test";
    meta.size_bytes = size;
    meta.strip_size = strip;
    data_.resize(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      data_[i] = static_cast<std::byte>(i % 251);
    }
    return pfs_->create_file(meta, std::make_unique<RoundRobinLayout>(4),
                             &data_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::unique_ptr<PfsClient> client_;
  std::vector<std::byte> data_;
};

TEST_F(ListIoFixture, DeliversExactBytesForSparseRuns) {
  const FileId f = make_file(4000, 500);
  // Runs chosen to hit different strips/servers and straddle one boundary.
  const RegionList regions = RegionList::from_runs(
      {{10, 50}, {480, 40}, {1200, 100}, {3900, 100}});

  std::vector<std::byte> got(regions.total_bytes());
  std::vector<pfs::Run> delivered;
  bool complete = false;
  // Reassemble via each run's file-space offset mapped to its position in
  // the (sorted, disjoint) region list.
  std::uint64_t positions[4] = {0, 50, 90, 190};
  client_->read_regions(
      f, regions, [&] { complete = true; },
      [&](pfs::Run run, const StripBuffer& payload) {
        ASSERT_EQ(payload.size(), run.length);
        delivered.push_back(run);
        for (std::size_t i = 0; i < 4; ++i) {
          if (regions.runs()[i].offset <= run.offset &&
              run.offset < regions.runs()[i].offset +
                               regions.runs()[i].length) {
            const auto span = payload.span();
            std::copy(span.begin(), span.end(),
                      got.begin() +
                          static_cast<std::ptrdiff_t>(
                              positions[i] +
                              (run.offset - regions.runs()[i].offset)));
          }
        }
      });
  sim_.run();
  EXPECT_TRUE(complete);

  // Every requested byte arrived with its correct value.
  std::vector<std::byte> want;
  for (const pfs::Run& r : regions.runs()) {
    want.insert(want.end(), data_.begin() + static_cast<std::ptrdiff_t>(r.offset),
                data_.begin() + static_cast<std::ptrdiff_t>(r.offset + r.length));
  }
  EXPECT_EQ(got, want);

  // Delivered runs cover exactly the request (split runs allowed).
  std::uint64_t delivered_bytes = 0;
  for (const pfs::Run& r : delivered) delivered_bytes += r.length;
  EXPECT_EQ(delivered_bytes, regions.total_bytes());
}

TEST_F(ListIoFixture, WireBytesAreRunsPlusHeaders) {
  const std::uint64_t strip = 1000;
  const FileId f = make_file(8000, strip);
  // One short run in each of the 8 strips: sparse access, every server
  // touched, zero coalescing opportunity across strips.
  std::vector<pfs::Run> runs;
  for (std::uint64_t s = 0; s < 8; ++s) {
    runs.push_back(pfs::Run{s * strip + 100, 64});
  }
  const RegionList regions = RegionList::from_runs(std::move(runs));

  client_->read_regions(f, regions, nullptr);
  sim_.run();

  // 4 servers, 2 strip-runs each: request = one list header per server,
  // reply = payload + per-run framing.
  const std::uint64_t requests =
      4 * RegionList::request_bytes(RegionEncoding::kExplicit, 2);
  const std::uint64_t replies =
      regions.total_bytes() + RegionList::reply_framing_bytes(8);
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kClientServer),
            requests + replies);
}

TEST_F(ListIoFixture, AdjacentRunsCoalesceIntoOneDiskRead) {
  const FileId f = make_file(4000, 4000);  // single strip, single server
  // Three touching runs + one distant: the server must issue exactly two
  // disk extents (240 bytes and 10 bytes), not four.
  const RegionList regions = RegionList::from_runs(
      {{0, 100}, {100, 50}, {150, 90}, {3000, 10}});

  const ServerIndex holder = pfs_->layout(f).primary(0);
  const auto reads_before = pfs_->server(holder).disk().service_histogram().count();
  bool complete = false;
  client_->read_regions(f, regions, [&] { complete = true; });
  sim_.run();
  EXPECT_TRUE(complete);
  const auto reads_after = pfs_->server(holder).disk().service_histogram().count();
  EXPECT_EQ(reads_after - reads_before, 2U);
}

TEST_F(ListIoFixture, ContiguousListMatchesReadRangeDiskBytes) {
  const FileId f = make_file(2000, 500);
  const ServerIndex holder0 = pfs_->layout(f).primary(0);

  // Classic whole-range read of strip 0.
  std::uint64_t classic_bytes = 0;
  {
    const auto before = pfs_->server(holder0).disk().bytes_read();
    client_->read_range(f, 0, 500, nullptr);
    sim_.run();
    classic_bytes = pfs_->server(holder0).disk().bytes_read() - before;
  }

  // Same bytes as a single-run list.
  const auto before = pfs_->server(holder0).disk().bytes_read();
  client_->read_regions(f, RegionList::from_runs({{0, 500}}), nullptr);
  sim_.run();
  const std::uint64_t list_bytes =
      pfs_->server(holder0).disk().bytes_read() - before;
  EXPECT_EQ(list_bytes, classic_bytes);
  EXPECT_EQ(list_bytes, 500U);
}

TEST_F(ListIoFixture, EmptyRegionListCompletesImmediately) {
  const FileId f = make_file(1000, 500);
  bool complete = false;
  client_->read_regions(f, RegionList::from_runs({}), [&] { complete = true; });
  sim_.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kClientServer), 0U);
}

}  // namespace
}  // namespace das::pfs
