#include "pfs/layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace das::pfs {
namespace {

TEST(RoundRobinTest, PrimaryIsStripModServers) {
  const RoundRobinLayout layout(4);
  for (std::uint64_t s = 0; s < 20; ++s) {
    EXPECT_EQ(layout.primary(s), s % 4);
  }
  EXPECT_TRUE(layout.replicas(3, 20).empty());
}

TEST(GroupedTest, GroupsOfRStripsRotate) {
  const GroupedLayout layout(3, 4);
  EXPECT_EQ(layout.primary(0), 0U);
  EXPECT_EQ(layout.primary(3), 0U);
  EXPECT_EQ(layout.primary(4), 1U);
  EXPECT_EQ(layout.primary(11), 2U);
  EXPECT_EQ(layout.primary(12), 0U);  // wraps
}

TEST(GroupedTest, PrimaryStripsAreContiguousRuns) {
  const GroupedLayout layout(2, 3);
  const auto strips = layout.primary_strips(0, 12);
  EXPECT_EQ(strips, (std::vector<std::uint64_t>{0, 1, 2, 6, 7, 8}));
}

TEST(DasReplicatedTest, FirstStripOfGroupReplicatedToPreviousServer) {
  const DasReplicatedLayout layout(4, 4, 1);
  // Strip 4 = first strip of group 1 (home server 1) -> replica on server 0.
  const auto reps = layout.replicas(4, 32);
  ASSERT_EQ(reps.size(), 1U);
  EXPECT_EQ(reps[0], 0U);
}

TEST(DasReplicatedTest, LastStripOfGroupReplicatedToNextServer) {
  const DasReplicatedLayout layout(4, 4, 1);
  // Strip 7 = last strip of group 1 -> replica on server 2.
  const auto reps = layout.replicas(7, 32);
  ASSERT_EQ(reps.size(), 1U);
  EXPECT_EQ(reps[0], 2U);
}

TEST(DasReplicatedTest, MiddleStripsAreNotReplicated) {
  const DasReplicatedLayout layout(4, 4, 1);
  EXPECT_TRUE(layout.replicas(5, 32).empty());
  EXPECT_TRUE(layout.replicas(6, 32).empty());
}

TEST(DasReplicatedTest, FileEdgesSuppressReplication) {
  const DasReplicatedLayout layout(4, 4, 1);
  // Strip 0 has no previous group; the file's last strip has no next group.
  EXPECT_TRUE(layout.replicas(0, 32).empty());
  EXPECT_TRUE(layout.replicas(31, 32).empty());
  // But strip 3 (last of group 0) is replicated forward.
  EXPECT_FALSE(layout.replicas(3, 32).empty());
}

TEST(DasReplicatedTest, WiderHaloReplicatesMoreStrips) {
  const DasReplicatedLayout layout(3, 6, 2);
  EXPECT_EQ(layout.replicas(6, 36).size(), 1U);   // pos 0 < halo
  EXPECT_EQ(layout.replicas(7, 36).size(), 1U);   // pos 1 < halo
  EXPECT_TRUE(layout.replicas(8, 36).empty());    // interior
  EXPECT_EQ(layout.replicas(10, 36).size(), 1U);  // pos 4 >= r - halo
  EXPECT_EQ(layout.replicas(11, 36).size(), 1U);
}

TEST(DasReplicatedTest, SingleServerHasNoReplicas) {
  const DasReplicatedLayout layout(1, 4, 1);
  for (std::uint64_t s = 0; s < 16; ++s) {
    EXPECT_TRUE(layout.replicas(s, 16).empty());
  }
}

TEST(DasReplicatedTest, WrapAroundNeighbours) {
  const DasReplicatedLayout layout(3, 2, 1);
  // Group 0 on server 0: its first strip replicates to server 2 only when a
  // previous group exists -> strip 0 has none. Group 3 (strips 6,7) is on
  // server 0 again; strip 6 replicates to server 2 (home of group 2).
  EXPECT_TRUE(layout.replicas(0, 12).empty());
  const auto reps = layout.replicas(6, 12);
  ASSERT_EQ(reps.size(), 1U);
  EXPECT_EQ(reps[0], 2U);
}

TEST(LayoutTest, HoldersDeduplicatePrimary) {
  const DasReplicatedLayout layout(2, 2, 1);
  // With D=2 the "previous" and "next" servers are the same single peer.
  for (std::uint64_t s = 0; s < 8; ++s) {
    const auto holders = layout.holders(s, 8);
    EXPECT_EQ(holders.front(), layout.primary(s));
    const std::set<ServerIndex> unique(holders.begin(), holders.end());
    EXPECT_EQ(unique.size(), holders.size());
  }
}

TEST(LayoutTest, HoldsAgreesWithHolders) {
  const DasReplicatedLayout layout(4, 4, 1);
  for (std::uint64_t s = 0; s < 32; ++s) {
    for (ServerIndex server = 0; server < 4; ++server) {
      const auto holders = layout.holders(s, 32);
      const bool expect =
          std::find(holders.begin(), holders.end(), server) != holders.end();
      EXPECT_EQ(layout.holds(server, s, 32), expect);
    }
  }
}

TEST(LayoutTest, LocalStripsIncludeReplicas) {
  const DasReplicatedLayout layout(4, 4, 1);
  // Server 0 owns group 0 (strips 0-3) and group 4 (16-19); it also stores
  // replicas: first strips of the groups on server 1 (4 and 20) and last
  // strips of the groups on server 3 (15; strip 31 is suppressed because
  // group 7 is the file's last group).
  const auto locals = layout.local_strips(0, 32);
  const std::vector<std::uint64_t> expected{0,  1,  2,  3,  4, 15,
                                            16, 17, 18, 19, 20};
  EXPECT_EQ(locals, expected);
}

// Capacity overhead of the DAS layout must approach 2*halo/r (paper: 2/r).
struct OverheadCase {
  std::uint32_t servers;
  std::uint64_t group;
  std::uint64_t halo;
};

class CapacityOverheadTest : public ::testing::TestWithParam<OverheadCase> {};

TEST_P(CapacityOverheadTest, MatchesTwoHaloOverR) {
  const auto [servers, group, halo] = GetParam();
  const DasReplicatedLayout layout(servers, group, halo);
  FileMeta meta;
  meta.name = "f";
  meta.strip_size = 1024;
  // Many whole groups so edge suppression is negligible.
  meta.size_bytes = meta.strip_size * group * servers * 64;

  std::uint64_t stored = 0;
  for (ServerIndex s = 0; s < servers; ++s) {
    stored += layout.stored_bytes(s, meta);
  }
  const double overhead =
      static_cast<double>(stored) / static_cast<double>(meta.size_bytes) -
      1.0;
  EXPECT_NEAR(overhead, layout.capacity_overhead(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CapacityOverheadTest,
    ::testing::Values(OverheadCase{4, 4, 1}, OverheadCase{4, 8, 1},
                      OverheadCase{4, 16, 2}, OverheadCase{8, 8, 2},
                      OverheadCase{2, 6, 3}, OverheadCase{12, 16, 1}),
    [](const auto& info) {
      return "D" + std::to_string(info.param.servers) + "_r" +
             std::to_string(info.param.group) + "_h" +
             std::to_string(info.param.halo);
    });

TEST(LayoutTest, StoredBytesSumsToFileSizeWithoutReplication) {
  const RoundRobinLayout layout(3);
  FileMeta meta;
  meta.name = "f";
  meta.strip_size = 100;
  meta.size_bytes = 1050;  // partial last strip
  std::uint64_t total = 0;
  for (ServerIndex s = 0; s < 3; ++s) total += layout.stored_bytes(s, meta);
  EXPECT_EQ(total, meta.size_bytes);
}

TEST(LayoutTest, CloneIsIndependentButEquivalent) {
  const DasReplicatedLayout layout(4, 8, 2);
  const auto clone = layout.clone();
  EXPECT_EQ(clone->name(), layout.name());
  for (std::uint64_t s = 0; s < 64; ++s) {
    EXPECT_EQ(clone->primary(s), layout.primary(s));
    EXPECT_EQ(clone->replicas(s, 64), layout.replicas(s, 64));
  }
}

TEST(LayoutTest, NamesDescribeParameters) {
  EXPECT_EQ(RoundRobinLayout(4).name(), "round-robin(D=4)");
  EXPECT_EQ(GroupedLayout(4, 8).name(), "grouped(D=4,r=8)");
  EXPECT_EQ(DasReplicatedLayout(4, 8, 2).name(),
            "das-replicated(D=4,r=8,halo=2)");
}

TEST(LayoutDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(RoundRobinLayout(0), "DAS_REQUIRE");
  EXPECT_DEATH(GroupedLayout(2, 0), "DAS_REQUIRE");
  EXPECT_DEATH(DasReplicatedLayout(2, 2, 2), "DAS_REQUIRE");  // 2h > r
  EXPECT_DEATH(DasReplicatedLayout(2, 4, 0), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::pfs
