#include "pfs/local_io.hpp"

#include <gtest/gtest.h>

#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class LocalIoFixture : public ::testing::Test {
 protected:
  LocalIoFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 4;
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
  }

  FileId make_file(std::uint64_t strips, std::uint64_t strip_size,
                   std::unique_ptr<Layout> layout) {
    FileMeta meta;
    meta.name = "f";
    meta.size_bytes = strips * strip_size;
    meta.strip_size = strip_size;
    data_.resize(meta.size_bytes);
    for (std::uint64_t i = 0; i < meta.size_bytes; ++i) {
      data_[i] = static_cast<std::byte>(i % 251);
    }
    return pfs_->create_file(meta, std::move(layout), &data_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::vector<std::byte> data_;
};

TEST_F(LocalIoFixture, RoundRobinEveryStripIsItsOwnRunWithMissingHalo) {
  const FileId f = make_file(16, 64, std::make_unique<RoundRobinLayout>(4));
  const LocalIo lio(*pfs_, 1, f, 1);
  ASSERT_EQ(lio.runs().size(), 4U);  // strips 1, 5, 9, 13
  for (const LocalRun& run : lio.runs()) {
    EXPECT_EQ(run.strip_count(), 1U);
    EXPECT_EQ(run.local_pre_halo, 0U);
    EXPECT_EQ(run.local_post_halo, 0U);
    EXPECT_EQ(run.missing_pre_halo, 1U);
    EXPECT_EQ(run.missing_post_halo, 1U);
  }
  EXPECT_EQ(lio.total_missing_halo_strips(), 8U);
  EXPECT_EQ(lio.local_size(), 4U * 64);
}

TEST_F(LocalIoFixture, FileEdgeRunsWantNoHaloOutsideTheFile) {
  const FileId f = make_file(16, 64, std::make_unique<RoundRobinLayout>(4));
  const LocalIo lio(*pfs_, 0, f, 1);  // strips 0, 4, 8, 12
  EXPECT_EQ(lio.runs().front().missing_pre_halo, 0U);  // strip 0: no pre
  EXPECT_EQ(lio.runs().front().missing_post_halo, 1U);
}

TEST_F(LocalIoFixture, DasLayoutHasAllHaloLocal) {
  const FileId f =
      make_file(16, 64, std::make_unique<DasReplicatedLayout>(4, 4, 1));
  for (ServerIndex server = 0; server < 4; ++server) {
    const LocalIo lio(*pfs_, server, f, 1);
    ASSERT_EQ(lio.runs().size(), 1U);
    EXPECT_EQ(lio.runs().front().strip_count(), 4U);
    EXPECT_EQ(lio.total_missing_halo_strips(), 0U);
  }
}

TEST_F(LocalIoFixture, GroupedWithoutReplicationMissesItsHalo) {
  const FileId f = make_file(16, 64, std::make_unique<GroupedLayout>(4, 4));
  const LocalIo lio(*pfs_, 1, f, 1);  // strips 4-7
  ASSERT_EQ(lio.runs().size(), 1U);
  EXPECT_EQ(lio.runs().front().missing_pre_halo, 1U);
  EXPECT_EQ(lio.runs().front().missing_post_halo, 1U);
}

TEST_F(LocalIoFixture, WideHaloPartiallyLocal) {
  // halo=1 replicas but the kernel wants 2 strips of halo: 1 local, 1 missing.
  const FileId f =
      make_file(24, 64, std::make_unique<DasReplicatedLayout>(4, 4, 1));
  const LocalIo lio(*pfs_, 1, f, 2);
  ASSERT_FALSE(lio.runs().empty());
  const LocalRun& run = lio.runs().front();
  EXPECT_EQ(run.local_pre_halo, 1U);
  EXPECT_EQ(run.missing_pre_halo, 1U);
  EXPECT_EQ(run.local_post_halo, 1U);
  EXPECT_EQ(run.missing_post_halo, 1U);
}

TEST_F(LocalIoFixture, ReadRunReturnsContiguousCoveredBytes) {
  const FileId f =
      make_file(16, 64, std::make_unique<DasReplicatedLayout>(4, 4, 1));
  const LocalIo lio(*pfs_, 1, f, 1);  // strips 4-7 plus local halo 3 and 8
  const LocalRun& run = lio.runs().front();
  EXPECT_EQ(run.local_pre_halo, 1U);
  EXPECT_EQ(run.local_post_halo, 1U);

  const auto bytes = lio.read_run(run);
  EXPECT_EQ(lio.run_buffer_offset(run), 3U * 64);
  ASSERT_EQ(bytes.size(), 6U * 64);  // strips 3..8
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[i], data_[3 * 64 + i]);
  }
}

TEST_F(LocalIoFixture, ZeroHaloRequestsNothing) {
  const FileId f = make_file(16, 64, std::make_unique<RoundRobinLayout>(4));
  const LocalIo lio(*pfs_, 2, f, 0);
  EXPECT_EQ(lio.total_missing_halo_strips(), 0U);
}

}  // namespace
}  // namespace das::pfs
