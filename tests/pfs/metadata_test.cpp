#include "pfs/metadata.hpp"

#include <gtest/gtest.h>

#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class MetadataFixture : public ::testing::Test {
 protected:
  MetadataFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 5;  // 4 servers + 1 client
    ncfg.wire_latency = sim::milliseconds(1);
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
    service_ = std::make_unique<MetadataService>(sim_, *network_, *pfs_, 0);
    cache_ = std::make_unique<MetadataCache>(sim_, *service_, 4);

    FileMeta meta;
    meta.name = "data";
    meta.size_bytes = 640;
    meta.strip_size = 64;
    file_ = pfs_->create_file(meta, std::make_unique<RoundRobinLayout>(4),
                              nullptr);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::unique_ptr<MetadataService> service_;
  std::unique_ptr<MetadataCache> cache_;
  FileId file_ = kInvalidFile;
};

TEST_F(MetadataFixture, LookupReturnsMetaAndLayout) {
  bool answered = false;
  service_->lookup(4, file_, [&](FileInfo info) {
    answered = true;
    EXPECT_EQ(info.meta.name, "data");
    EXPECT_EQ(info.meta.size_bytes, 640U);
    ASSERT_NE(info.layout, nullptr);
    EXPECT_EQ(info.layout->name(), "round-robin(D=4)");
  });
  sim_.run();
  EXPECT_TRUE(answered);
  EXPECT_EQ(service_->lookups_served(), 1U);
}

TEST_F(MetadataFixture, LookupCostsARoundTrip) {
  sim::SimTime answered_at = -1;
  service_->lookup(4, file_, [&](FileInfo) { answered_at = sim_.now(); });
  sim_.run();
  EXPECT_GE(answered_at, 2 * sim::milliseconds(1));  // request + reply
}

TEST_F(MetadataFixture, CacheHitsSkipTheService) {
  cache_->lookup(file_, [](FileInfo) {});
  sim_.run();
  EXPECT_EQ(cache_->misses(), 1U);
  EXPECT_EQ(service_->lookups_served(), 1U);

  sim::SimTime second_at = -1;
  const sim::SimTime asked_at = sim_.now();
  cache_->lookup(file_, [&](FileInfo) { second_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(cache_->hits(), 1U);
  EXPECT_EQ(service_->lookups_served(), 1U);  // no extra network trip
  EXPECT_EQ(second_at, asked_at);             // answered locally
}

TEST_F(MetadataFixture, CacheSeesLayoutChangesAfterRedistribution) {
  cache_->lookup(file_, [](FileInfo) {});
  sim_.run();
  pfs_->redistribute(file_, std::make_unique<GroupedLayout>(4, 2), nullptr);
  sim_.run();

  std::string seen;
  cache_->lookup(file_, [&](FileInfo info) { seen = info.layout->name(); });
  sim_.run();
  EXPECT_EQ(seen, "grouped(D=4,r=2)");
}

TEST_F(MetadataFixture, InvalidateForcesARefetch) {
  cache_->lookup(file_, [](FileInfo) {});
  sim_.run();
  cache_->invalidate(file_);
  cache_->lookup(file_, [](FileInfo) {});
  sim_.run();
  EXPECT_EQ(cache_->misses(), 2U);
  EXPECT_EQ(service_->lookups_served(), 2U);
}

TEST_F(MetadataFixture, LookupsAreControlTraffic) {
  service_->lookup(4, file_, [](FileInfo) {});
  sim_.run();
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kClientServer), 0U);
  EXPECT_GE(network_->messages_delivered(net::TrafficClass::kControl), 2U);
}

}  // namespace
}  // namespace das::pfs
