// Edge cases of the PFS client: sub-strip ranges, range boundaries,
// misaligned writes, many outstanding operations.
#include <gtest/gtest.h>

#include "pfs/client.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class ClientEdgeFixture : public ::testing::Test {
 protected:
  ClientEdgeFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 5;
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
    client_ = std::make_unique<PfsClient>(sim_, *network_, *pfs_, 4);

    FileMeta meta;
    meta.name = "f";
    meta.size_bytes = 1000;  // 10 strips, last one partial (9 * 104 ... )
    meta.strip_size = 104;
    data_.resize(meta.size_bytes);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = static_cast<std::byte>(i % 251);
    }
    file_ = pfs_->create_file(meta, std::make_unique<RoundRobinLayout>(4),
                              &data_);
  }

  std::vector<std::byte> read(std::uint64_t offset, std::uint64_t length) {
    std::vector<std::byte> got(length);
    bool complete = false;
    client_->read_range(
        file_, offset, length, [&] { complete = true; },
        [&](StripRef ref, const StripBuffer& payload) {
          const auto bytes = payload.span();
          std::copy(bytes.begin(), bytes.end(),
                    got.begin() +
                        static_cast<std::ptrdiff_t>(ref.offset - offset));
        });
    sim_.run();
    EXPECT_TRUE(complete);
    return got;
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::unique_ptr<PfsClient> client_;
  std::vector<std::byte> data_;
  FileId file_ = kInvalidFile;
};

TEST_F(ClientEdgeFixture, SingleByteRead) {
  const auto got = read(555, 1);
  EXPECT_EQ(got[0], data_[555]);
}

TEST_F(ClientEdgeFixture, ReadWithinOneStrip) {
  const auto got = read(210, 50);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data_.begin() + 210));
}

TEST_F(ClientEdgeFixture, ReadAcrossAStripBoundary) {
  const auto got = read(100, 10);  // strips 0 and 1 (strip size 104)
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data_.begin() + 100));
}

TEST_F(ClientEdgeFixture, ReadTheExactFileTail) {
  const auto got = read(990, 10);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data_.begin() + 990));
}

TEST_F(ClientEdgeFixture, ReadWholeFile) {
  EXPECT_EQ(read(0, 1000), data_);
}

TEST_F(ClientEdgeFixture, PartialTailStripHasShortLength) {
  // Strip 9 covers [936, 1000): only 64 bytes.
  std::uint64_t seen = 0;
  client_->read_range(file_, 936, 64, nullptr,
                      [&](StripRef ref, const StripBuffer&) {
                        seen = ref.length;
                      });
  sim_.run();
  EXPECT_EQ(seen, 64U);
}

TEST_F(ClientEdgeFixture, ManyConcurrentReadsAllComplete) {
  int complete = 0;
  for (int i = 0; i < 50; ++i) {
    client_->read_range(file_, static_cast<std::uint64_t>(i * 17), 64,
                        [&] { ++complete; });
  }
  sim_.run();
  EXPECT_EQ(complete, 50);
}

TEST_F(ClientEdgeFixture, ByteCountersTrackRequests) {
  read(0, 500);
  std::vector<std::byte> fresh(104, std::byte{1});
  client_->write_range(file_, 104, 104, fresh, nullptr);
  sim_.run();
  EXPECT_EQ(client_->bytes_read(), 500U);
  EXPECT_EQ(client_->bytes_written(), 104U);
}

TEST_F(ClientEdgeFixture, WriteDeathOnMisalignedOffset) {
  std::vector<std::byte> buf(104, std::byte{0});
  EXPECT_DEATH(client_->write_range(file_, 50, 104, buf, nullptr),
               "DAS_REQUIRE");
}

TEST_F(ClientEdgeFixture, WriteDeathOnMisalignedEnd) {
  std::vector<std::byte> buf(60, std::byte{0});
  EXPECT_DEATH(client_->write_range(file_, 104, 60, buf, nullptr),
               "DAS_REQUIRE");
}

TEST_F(ClientEdgeFixture, ReadDeathBeyondEof) {
  EXPECT_DEATH(client_->read_range(file_, 990, 20, nullptr), "DAS_REQUIRE");
}

TEST_F(ClientEdgeFixture, FinalPartialWriteIsAccepted) {
  std::vector<std::byte> tail(64, std::byte{0x77});
  bool complete = false;
  client_->write_range(file_, 936, 64, tail, [&] { complete = true; });
  sim_.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(read(936, 64), tail);
}

}  // namespace
}  // namespace das::pfs
