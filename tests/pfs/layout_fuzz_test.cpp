// Randomized layout invariants: for arbitrary (D, r, halo, strips)
// configurations, the placement must keep its structural promises. Failures
// here would silently corrupt every simulation built on top.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pfs/layout.hpp"
#include "simkit/random.hpp"

namespace das::pfs {
namespace {

struct FuzzConfig {
  std::uint32_t servers;
  std::uint64_t group;
  std::uint64_t halo;
  std::uint64_t strips;
};

std::vector<FuzzConfig> random_configs(std::size_t n) {
  sim::Rng rng(0xF0CC5EED);
  std::vector<FuzzConfig> out;
  while (out.size() < n) {
    FuzzConfig cfg;
    cfg.servers = static_cast<std::uint32_t>(rng.uniform_int(1, 16));
    cfg.halo = static_cast<std::uint64_t>(rng.uniform_int(1, 4));
    cfg.group = static_cast<std::uint64_t>(
        rng.uniform_int(static_cast<std::int64_t>(2 * cfg.halo), 40));
    cfg.strips = static_cast<std::uint64_t>(rng.uniform_int(1, 600));
    out.push_back(cfg);
  }
  return out;
}

class LayoutFuzzTest : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(LayoutFuzzTest, StructuralInvariantsHold) {
  const auto [servers, group, halo, strips] = GetParam();
  const DasReplicatedLayout layout(servers, group, halo);

  std::map<ServerIndex, std::uint64_t> primaries_per_server;
  for (std::uint64_t s = 0; s < strips; ++s) {
    const auto holders = layout.holders(s, strips);

    // Exactly one primary, listed first, inside the server range.
    ASSERT_FALSE(holders.empty());
    EXPECT_EQ(holders.front(), layout.primary(s));
    EXPECT_LT(layout.primary(s), servers);
    ++primaries_per_server[layout.primary(s)];

    // No duplicate holders; at most primary + two replica sides.
    std::set<ServerIndex> unique(holders.begin(), holders.end());
    EXPECT_EQ(unique.size(), holders.size());
    EXPECT_LE(holders.size(), 3U);

    // holds() agrees with holders() for every server.
    for (ServerIndex server = 0; server < servers; ++server) {
      EXPECT_EQ(layout.holds(server, s, strips), unique.contains(server));
    }

    // Replicas are exactly the group-edge strips (when a neighbour group
    // exists), and they live on the adjacent servers.
    const std::uint64_t pos = s % group;
    const std::uint64_t g = s / group;
    const std::uint64_t last_group = (strips - 1) / group;
    const bool expect_pre = pos < halo && g > 0 && servers > 1;
    const bool expect_post = pos + halo >= group && g < last_group &&
                             servers > 1;
    const auto reps = layout.replicas(s, strips);
    std::set<ServerIndex> rep_set(reps.begin(), reps.end());
    std::set<ServerIndex> expected;
    if (expect_pre) {
      expected.insert(
          static_cast<ServerIndex>((layout.primary(s) + servers - 1) %
                                   servers));
    }
    if (expect_post) {
      expected.insert(
          static_cast<ServerIndex>((layout.primary(s) + 1) % servers));
    }
    // With D == 1 suppressed above; with D == 2 both sides may coincide.
    expected.erase(layout.primary(s));
    EXPECT_EQ(rep_set, expected) << "strip " << s;
  }

  // local_strips is consistent with holds and covers every strip once as
  // primary.
  std::uint64_t total_locals = 0;
  std::uint64_t total_primaries = 0;
  for (ServerIndex server = 0; server < servers; ++server) {
    const auto locals = layout.local_strips(server, strips);
    for (const std::uint64_t s : locals) {
      EXPECT_TRUE(layout.holds(server, s, strips));
    }
    EXPECT_TRUE(std::is_sorted(locals.begin(), locals.end()));
    total_locals += locals.size();
    total_primaries += layout.primary_strips(server, strips).size();
  }
  EXPECT_EQ(total_primaries, strips);
  EXPECT_GE(total_locals, strips);
}

INSTANTIATE_TEST_SUITE_P(Random, LayoutFuzzTest,
                         ::testing::ValuesIn(random_configs(24)),
                         [](const auto& info) {
                           const auto& c = info.param;
                           return "D" + std::to_string(c.servers) + "_r" +
                                  std::to_string(c.group) + "_h" +
                                  std::to_string(c.halo) + "_n" +
                                  std::to_string(c.strips);
                         });

}  // namespace
}  // namespace das::pfs
