#include <gtest/gtest.h>

#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class RedistributeFixture : public ::testing::Test {
 protected:
  RedistributeFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 4;
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
  }

  FileId make_file(std::uint64_t strips, std::unique_ptr<Layout> layout) {
    FileMeta meta;
    meta.name = "f";
    meta.size_bytes = strips * 64;
    meta.strip_size = 64;
    data_.resize(meta.size_bytes);
    for (std::uint64_t i = 0; i < meta.size_bytes; ++i) {
      data_[i] = static_cast<std::byte>(i % 251);
    }
    return pfs_->create_file(meta, std::move(layout), &data_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::vector<std::byte> data_;
};

TEST_F(RedistributeFixture, RoundRobinToDasPreservesContent) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  bool complete = false;
  const std::uint64_t moved = pfs_->redistribute(
      f, std::make_unique<DasReplicatedLayout>(4, 4, 1),
      [&] { complete = true; });
  EXPECT_GT(moved, 0U);
  sim_.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(pfs_->gather_bytes(f), data_);
  EXPECT_EQ(pfs_->layout(f).name(), "das-replicated(D=4,r=4,halo=1)");
}

TEST_F(RedistributeFixture, NewHoldersHaveTheStrips) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  pfs_->redistribute(f, std::make_unique<DasReplicatedLayout>(4, 4, 1),
                     nullptr);
  sim_.run();
  const Layout& layout = pfs_->layout(f);
  for (std::uint64_t s = 0; s < 16; ++s) {
    for (const ServerIndex holder : layout.holders(s, 16)) {
      EXPECT_TRUE(pfs_->server(holder).store().has(f, s));
      EXPECT_EQ(pfs_->server(holder).store().buffer(f, s).to_vector(),
                std::vector<std::byte>(data_.begin() + static_cast<long>(s * 64),
                                       data_.begin() +
                                           static_cast<long>((s + 1) * 64)));
    }
  }
}

TEST_F(RedistributeFixture, DroppedCopiesAreErased) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  pfs_->redistribute(f, std::make_unique<GroupedLayout>(4, 4), nullptr);
  sim_.run();
  // Total stored = exactly one copy of every strip (no replication).
  EXPECT_EQ(pfs_->total_stored_bytes(), 16U * 64);
}

TEST_F(RedistributeFixture, MovedBytesMatchLayoutDelta) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  // Round-robin: strip s on server s%4. Grouped(4,4): strip s on s/4.
  // Strips already in place: s where s%4 == s/4 -> s in {0, 5, 10, 15}.
  const std::uint64_t moved =
      pfs_->redistribute(f, std::make_unique<GroupedLayout>(4, 4), nullptr);
  EXPECT_EQ(moved, (16U - 4U) * 64);
  sim_.run();
}

TEST_F(RedistributeFixture, SameLayoutMovesNothingButStillCompletes) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  bool complete = false;
  const std::uint64_t moved = pfs_->redistribute(
      f, std::make_unique<RoundRobinLayout>(4), [&] { complete = true; });
  EXPECT_EQ(moved, 0U);
  sim_.run();
  EXPECT_TRUE(complete);
}

TEST_F(RedistributeFixture, TrafficIsServerToServer) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  const std::uint64_t moved = pfs_->redistribute(
      f, std::make_unique<DasReplicatedLayout>(4, 4, 1), nullptr);
  sim_.run();
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kServerServer),
            moved);
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kClientServer), 0U);
}

TEST_F(RedistributeFixture, TakesSimulatedTime) {
  const FileId f = make_file(64, std::make_unique<RoundRobinLayout>(4));
  sim::SimTime done = -1;
  pfs_->redistribute(f, std::make_unique<DasReplicatedLayout>(4, 8, 1),
                     [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_GT(done, 0);
}

}  // namespace
}  // namespace das::pfs
