#include "pfs/file.hpp"

#include <gtest/gtest.h>

namespace das::pfs {
namespace {

FileMeta meta_of(std::uint64_t size, std::uint64_t strip,
                 std::uint32_t element = 4) {
  FileMeta m;
  m.name = "f";
  m.size_bytes = size;
  m.strip_size = strip;
  m.element_size = element;
  return m;
}

TEST(FileMetaTest, NumStripsRoundsUp) {
  EXPECT_EQ(meta_of(100, 100).num_strips(), 1U);
  EXPECT_EQ(meta_of(101, 100).num_strips(), 2U);
  EXPECT_EQ(meta_of(1000, 100).num_strips(), 10U);
}

TEST(FileMetaTest, StripRefsTileTheFile) {
  const FileMeta m = meta_of(250, 100);
  EXPECT_EQ(m.strip(0), (StripRef{0, 0, 100}));
  EXPECT_EQ(m.strip(1), (StripRef{1, 100, 100}));
  EXPECT_EQ(m.strip(2), (StripRef{2, 200, 50}));  // partial tail
}

TEST(FileMetaTest, StripOfByte) {
  const FileMeta m = meta_of(250, 100);
  EXPECT_EQ(m.strip_of_byte(0), 0U);
  EXPECT_EQ(m.strip_of_byte(99), 0U);
  EXPECT_EQ(m.strip_of_byte(100), 1U);
  EXPECT_EQ(m.strip_of_byte(249), 2U);
}

TEST(FileMetaTest, StripOfElementMatchesPaperEq1) {
  // strip(i) = i * E / strip_size.
  const FileMeta m = meta_of(4096, 256, 4);
  EXPECT_EQ(m.strip_of_element(0), 0U);
  EXPECT_EQ(m.strip_of_element(63), 0U);   // 63*4 = 252 < 256
  EXPECT_EQ(m.strip_of_element(64), 1U);   // 256
  EXPECT_EQ(m.strip_of_element(1000), 1000U * 4 / 256);
}

TEST(FileMetaTest, StripOfElementSurvivesThe4GiBByteBoundary) {
  // The element whose byte offset is exactly 4 GiB: i * element_size
  // overflows 32-bit arithmetic, so the mapping must run in 64-bit.
  const FileMeta m = meta_of(8ULL << 30, 64 * 1024, 4);
  const std::uint64_t boundary = (4ULL << 30) / 4;
  EXPECT_EQ(m.strip_of_element(boundary), (4ULL << 30) / (64 * 1024));
  EXPECT_EQ(m.strip_of_element(boundary - 1),
            (4ULL << 30) / (64 * 1024) - 1);
  EXPECT_EQ(m.strip_of_element(m.num_elements() - 1), m.num_strips() - 1);
}

TEST(FileMetaDeathTest, StripOfElementRejectsOutOfRangeIndexes) {
  const FileMeta m = meta_of(4096, 256, 4);
  EXPECT_DEATH(m.strip_of_element(m.num_elements()), "DAS_REQUIRE");
  EXPECT_DEATH(meta_of(8ULL << 30, 64 * 1024, 4)
                   .strip_of_element((8ULL << 30) / 4),
               "DAS_REQUIRE");
}

TEST(FileMetaTest, ElementCounts) {
  const FileMeta m = meta_of(1000, 256, 4);
  EXPECT_EQ(m.num_elements(), 250U);
  EXPECT_EQ(m.elements_in_strip(0), 64U);
  EXPECT_EQ(m.elements_in_strip(3), (1000U - 3 * 256) / 4);
}

TEST(FileMetaDeathTest, OutOfRangeAccessAborts) {
  const FileMeta m = meta_of(250, 100);
  EXPECT_DEATH(m.strip(3), "DAS_REQUIRE");
  EXPECT_DEATH(m.strip_of_byte(250), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::pfs
