// Layout edge cases: partial last groups, halo replication at the file
// boundaries, replica-count clamping, and the degenerate single-server
// placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pfs/layout.hpp"

namespace das::pfs {
namespace {

TEST(LayoutEdgeTest, GroupedPartialLastGroupStaysOnItsServer) {
  // 4 servers, groups of 4, but only 14 strips: the last group is partial
  // (strips 12, 13) and must land on server 3 like a full group would.
  const GroupedLayout layout(4, 4);
  EXPECT_EQ(layout.primary(12), 3U);
  EXPECT_EQ(layout.primary(13), 3U);
  EXPECT_EQ(layout.primary_strips(3, 14),
            (std::vector<std::uint64_t>{12, 13}));
  // And nothing past the end is ever attributed to anyone.
  for (ServerIndex server = 0; server < 4; ++server) {
    for (const std::uint64_t s : layout.primary_strips(server, 14)) {
      EXPECT_LT(s, 14U);
    }
  }
}

TEST(LayoutEdgeTest, DasReplicatedNoHaloPastTheFileEnds) {
  // Group 0's first strips have no previous group to serve; the last
  // group's final strips have no next group. Neither may replicate.
  const DasReplicatedLayout layout(4, 4, 1);
  EXPECT_TRUE(layout.replicas(0, 16).empty());
  EXPECT_TRUE(layout.replicas(15, 16).empty());
  // Interior group edges do replicate, onto the adjacent server.
  EXPECT_EQ(layout.replicas(4, 16), (std::vector<ServerIndex>{0}));
  EXPECT_EQ(layout.replicas(3, 16), (std::vector<ServerIndex>{1}));
}

TEST(LayoutEdgeTest, DasReplicatedPartialLastGroupBoundary) {
  // 14 strips: the last group holds only strips 12-13. Strip 12 is a
  // group-first strip (halo for server 2); strip 13 is the file's last
  // strip — `pos + halo >= r` is false for it (pos 1, r 4), so it gains no
  // next-server copy, and there is no next group anyway.
  const DasReplicatedLayout layout(4, 4, 1);
  EXPECT_EQ(layout.replicas(12, 14), (std::vector<ServerIndex>{2}));
  EXPECT_TRUE(layout.replicas(13, 14).empty());
  // Strip 11 ends group 2; its next-group copy must still appear because
  // group 3 exists (even partial).
  EXPECT_EQ(layout.replicas(11, 14), (std::vector<ServerIndex>{3}));
}

TEST(LayoutEdgeTest, DasReplicatedWideHaloMergesDuplicateNeighbours) {
  // d=2, r=4, halo=2: a strip can be both group-first (previous server)
  // and group-last (next server) material, and with two servers previous
  // == next. Holders must stay deduplicated.
  const DasReplicatedLayout layout(2, 4, 2);
  for (std::uint64_t s = 0; s < 12; ++s) {
    const auto holders = layout.holders(s, 12);
    std::vector<ServerIndex> sorted = holders;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate holder for strip " << s;
    EXPECT_EQ(holders.front(), layout.primary(s));
  }
}

TEST(LayoutEdgeTest, DasReplicatedSingleServerHasNoReplicas) {
  // d_ == 1: every strip lives on server 0; halo copies would be the same
  // physical server, so replicas must vanish.
  const DasReplicatedLayout layout(1, 4, 1);
  for (std::uint64_t s = 0; s < 8; ++s) {
    EXPECT_EQ(layout.primary(s), 0U);
    EXPECT_TRUE(layout.replicas(s, 8).empty());
    EXPECT_EQ(layout.holders(s, 8), (std::vector<ServerIndex>{0}));
  }
}

TEST(LayoutEdgeTest, ReplicatedRoundRobinClampsCopiesToServers) {
  // Requesting more copies than servers must clamp to one holder per
  // server, and zero copies must clamp up to one (the primary).
  const ReplicatedRoundRobinLayout over(3, 8);
  EXPECT_EQ(over.copies(), 3U);
  for (std::uint64_t s = 0; s < 6; ++s) {
    const auto holders = over.holders(s, 6);
    EXPECT_EQ(holders.size(), 3U);
    std::vector<ServerIndex> sorted = holders;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<ServerIndex>{0, 1, 2}));
  }

  const ReplicatedRoundRobinLayout zero(3, 0);
  EXPECT_EQ(zero.copies(), 1U);
  EXPECT_TRUE(zero.replicas(0, 6).empty());
}

TEST(LayoutEdgeTest, HoldsAgreesWithHoldersEverywhere) {
  const DasReplicatedLayout layout(4, 4, 1);
  for (std::uint64_t s = 0; s < 14; ++s) {
    const auto holders = layout.holders(s, 14);
    for (ServerIndex server = 0; server < 4; ++server) {
      const bool listed =
          std::find(holders.begin(), holders.end(), server) != holders.end();
      EXPECT_EQ(layout.holds(server, s, 14), listed)
          << "server " << server << " strip " << s;
    }
  }
}

TEST(LayoutEdgeTest, StoredBytesCountsThePartialLastStrip) {
  // 5 strips of 64 plus a 16-byte tail on one server: stored_bytes must
  // sum true strip lengths, not num_strips * strip_size.
  FileMeta meta;
  meta.name = "f";
  meta.strip_size = 64;
  meta.size_bytes = 5 * 64 + 16;
  const RoundRobinLayout layout(1);
  EXPECT_EQ(layout.stored_bytes(0, meta), meta.size_bytes);

  // Across servers the totals partition the file exactly (no replication).
  const RoundRobinLayout spread(4);
  std::uint64_t total = 0;
  for (ServerIndex server = 0; server < 4; ++server) {
    total += spread.stored_bytes(server, meta);
  }
  EXPECT_EQ(total, meta.size_bytes);
}

TEST(LayoutEdgeTest, DasReplicatedStoredBytesIncludesHaloCopies) {
  // 16 strips of 64 on 4 servers, groups of 4, halo 1. Server 1 stores its
  // own group (strips 4-7) plus strip 3 (previous group's last) and strip
  // 8 (next group's first): 6 strips.
  FileMeta meta;
  meta.name = "f";
  meta.strip_size = 64;
  meta.size_bytes = 16 * 64;
  const DasReplicatedLayout layout(4, 4, 1);
  EXPECT_EQ(layout.stored_bytes(1, meta), 6U * 64);
  // Server 0 has no previous group: 5 strips only.
  EXPECT_EQ(layout.stored_bytes(0, meta), 5U * 64);
}

}  // namespace
}  // namespace das::pfs
