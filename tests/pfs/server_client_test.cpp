#include <gtest/gtest.h>

#include "pfs/client.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class PfsFixture : public ::testing::Test {
 protected:
  PfsFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 6;  // 4 servers + 2 clients
    ncfg.nic_bandwidth_bps = 1024.0 * 1024;
    ncfg.wire_latency = sim::microseconds(100);
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
    client_ = std::make_unique<PfsClient>(sim_, *network_, *pfs_, 4);
  }

  /// A file whose byte i == i % 251 (easy to validate).
  FileId make_file(std::uint64_t size, std::uint64_t strip,
                   std::unique_ptr<Layout> layout = nullptr) {
    FileMeta meta;
    meta.name = "test";
    meta.size_bytes = size;
    meta.strip_size = strip;
    data_.resize(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      data_[i] = static_cast<std::byte>(i % 251);
    }
    if (!layout) layout = std::make_unique<RoundRobinLayout>(4);
    return pfs_->create_file(meta, std::move(layout), &data_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::unique_ptr<PfsClient> client_;
  std::vector<std::byte> data_;
};

TEST_F(PfsFixture, CreateFilePlacesStripsOnHolders) {
  const FileId f = make_file(1000, 100);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const ServerIndex holder = pfs_->layout(f).primary(s);
    EXPECT_TRUE(pfs_->server(holder).store().has(f, s));
    for (ServerIndex other = 0; other < 4; ++other) {
      if (other != holder) EXPECT_FALSE(pfs_->server(other).store().has(f, s));
    }
  }
  EXPECT_EQ(pfs_->total_stored_bytes(), 1000U);
}

TEST_F(PfsFixture, GatherReassemblesFile) {
  const FileId f = make_file(1000, 128);
  EXPECT_EQ(pfs_->gather_bytes(f), data_);
}

TEST_F(PfsFixture, ReadRangeDeliversExactBytes) {
  const FileId f = make_file(1000, 100);
  std::vector<std::byte> got(350);
  bool complete = false;
  client_->read_range(
      f, 150, 350, [&] { complete = true; },
      [&](StripRef ref, const StripBuffer& payload) {
        ASSERT_EQ(payload.size(), ref.length);
        const auto bytes = payload.span();
        std::copy(bytes.begin(), bytes.end(),
                  got.begin() + static_cast<std::ptrdiff_t>(ref.offset - 150));
      });
  sim_.run();
  EXPECT_TRUE(complete);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data_.begin() + 150));
}

TEST_F(PfsFixture, ReadAccountsClientServerTraffic) {
  const FileId f = make_file(1000, 100);
  client_->read_range(f, 0, 1000, nullptr);
  sim_.run();
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kClientServer),
            1000U);
  EXPECT_GT(network_->messages_delivered(net::TrafficClass::kControl), 0U);
}

TEST_F(PfsFixture, ReadTakesAtLeastDiskAndWireTime) {
  const FileId f = make_file(1000, 1000);
  sim::SimTime done = -1;
  client_->read_range(f, 0, 1000, [&] { done = sim_.now(); });
  sim_.run();
  // request wire latency + seek + disk + response latency + serialization.
  EXPECT_GT(done, sim::microseconds(200));
}

TEST_F(PfsFixture, WriteRangeUpdatesAllHolders) {
  const FileId f =
      make_file(800, 100, std::make_unique<DasReplicatedLayout>(4, 2, 1));
  std::vector<std::byte> fresh(200, std::byte{0xAB});
  bool complete = false;
  client_->write_range(f, 200, 200, fresh, [&] { complete = true; });
  sim_.run();
  EXPECT_TRUE(complete);
  const std::uint64_t n = pfs_->meta(f).num_strips();
  for (std::uint64_t s = 2; s <= 3; ++s) {
    for (const ServerIndex holder : pfs_->layout(f).holders(s, n)) {
      EXPECT_EQ(pfs_->server(holder).store().buffer(f, s).to_vector(),
                std::vector<std::byte>(100, std::byte{0xAB}));
    }
  }
}

TEST_F(PfsFixture, WriteThenGatherSeesNewData) {
  const FileId f = make_file(1000, 100);
  std::vector<std::byte> fresh(1000, std::byte{0x5C});
  client_->write_range(f, 0, 1000, fresh, nullptr);
  sim_.run();
  EXPECT_EQ(pfs_->gather_bytes(f), fresh);
}

TEST_F(PfsFixture, ServerCountsRemoteService) {
  const FileId f = make_file(400, 100);
  client_->read_range(f, 0, 400, nullptr);
  sim_.run();
  std::uint64_t reads = 0, bytes = 0;
  for (ServerIndex s = 0; s < 4; ++s) {
    reads += pfs_->server(s).remote_reads_served();
    bytes += pfs_->server(s).remote_bytes_served();
  }
  EXPECT_EQ(reads, 4U);
  EXPECT_EQ(bytes, 400U);
}

TEST_F(PfsFixture, ServerOfNodeMapping) {
  EXPECT_EQ(pfs_->server_of_node(2), 2U);
  EXPECT_EQ(pfs_->server_of_node(5), Pfs::kInvalidServer);
  EXPECT_EQ(pfs_->server_node(3), 3U);
}

TEST_F(PfsFixture, TimingOnlyFileReadsDeliverEmptyPayload) {
  FileMeta meta;
  meta.name = "timing";
  meta.size_bytes = 500;
  meta.strip_size = 100;
  const FileId f = pfs_->create_file(
      meta, std::make_unique<RoundRobinLayout>(4), nullptr);
  std::size_t strips = 0;
  client_->read_range(f, 0, 500, nullptr,
                      [&](StripRef, const StripBuffer& payload) {
                        EXPECT_TRUE(payload.empty());
                        ++strips;
                      });
  sim_.run();
  EXPECT_EQ(strips, 5U);
}

}  // namespace
}  // namespace das::pfs
