#include "pfs/strip_buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace das::pfs {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(StripBufferTest, DefaultIsEmpty) {
  StripBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer);
  EXPECT_EQ(buffer.size(), 0U);
  EXPECT_EQ(buffer.use_count(), 0U);
  EXPECT_TRUE(buffer.span().empty());
  EXPECT_TRUE(buffer.to_vector().empty());
}

TEST(StripBufferTest, AllocateIsZeroFilledAndWritable) {
  StripBuffer buffer = StripBuffer::allocate(8);
  ASSERT_EQ(buffer.size(), 8U);
  for (const std::byte b : buffer.span()) {
    EXPECT_EQ(b, std::byte{0});
  }
  buffer.mutable_data()[3] = std::byte{42};
  EXPECT_EQ(buffer.span()[3], std::byte{42});
}

TEST(StripBufferTest, CopyOfMatchesSource) {
  const auto source = bytes_of({1, 2, 3, 4, 5});
  const StripBuffer buffer = StripBuffer::copy_of(source);
  EXPECT_EQ(buffer.to_vector(), source);
  // Copying an empty span gives an empty handle, not a zero-length payload.
  EXPECT_TRUE(StripBuffer::copy_of(std::vector<std::byte>{}).empty());
}

TEST(StripBufferTest, CopySharesPayloadWithoutCopyingBytes) {
  const StripBuffer a = StripBuffer::copy_of(bytes_of({1, 2, 3, 4}));
  EXPECT_EQ(a.use_count(), 1U);
  const StripBuffer b = a;  // NOLINT(performance-unnecessary-copy-*)
  EXPECT_EQ(a.use_count(), 2U);
  EXPECT_EQ(b.use_count(), 2U);
  EXPECT_EQ(a.data(), b.data());  // same payload, no byte copy
  EXPECT_EQ(a, b);
}

TEST(StripBufferTest, MoveTransfersOwnership) {
  StripBuffer a = StripBuffer::copy_of(bytes_of({1, 2}));
  StripBuffer b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.use_count(), 1U);
  EXPECT_EQ(b.to_vector(), bytes_of({1, 2}));
}

TEST(StripBufferTest, ViewSelectsSubrangeAndSharesPayload) {
  const StripBuffer whole = StripBuffer::copy_of(bytes_of({0, 1, 2, 3, 4, 5}));
  const StripBuffer middle = whole.view(2, 3);
  EXPECT_EQ(middle.size(), 3U);
  EXPECT_EQ(middle.to_vector(), bytes_of({2, 3, 4}));
  EXPECT_EQ(whole.use_count(), 2U);
  EXPECT_EQ(middle.data(), whole.data() + 2);

  // Views compose: a view of a view offsets against the outer view.
  const StripBuffer inner = middle.view(1, 2);
  EXPECT_EQ(inner.to_vector(), bytes_of({3, 4}));
  EXPECT_EQ(whole.use_count(), 3U);
}

TEST(StripBufferTest, ViewOfEmptyBufferIsEmpty) {
  const StripBuffer empty;
  EXPECT_TRUE(empty.view(0, 0).empty());
}

TEST(StripBufferTest, PayloadOutlivesOriginalHandle) {
  StripBuffer view;
  {
    StripBuffer whole = StripBuffer::copy_of(bytes_of({9, 8, 7, 6}));
    view = whole.view(1, 2);
  }
  EXPECT_EQ(view.use_count(), 1U);
  EXPECT_EQ(view.to_vector(), bytes_of({8, 7}));
}

TEST(StripBufferTest, EqualityComparesContentsNotIdentity) {
  const StripBuffer a = StripBuffer::copy_of(bytes_of({1, 2, 3}));
  const StripBuffer b = StripBuffer::copy_of(bytes_of({1, 2, 3}));
  const StripBuffer c = StripBuffer::copy_of(bytes_of({1, 2, 4}));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(StripBuffer{}, StripBuffer{});
}

TEST(StripBufferTest, PoolRecyclesFreedPayloads) {
  StripBuffer::trim_pool();
  StripBuffer::reset_pool_stats();
  {
    const StripBuffer first = StripBuffer::allocate(4096);
    (void)first;
  }
  EXPECT_EQ(StripBuffer::pool_stats().fresh_allocs, 1U);
  EXPECT_EQ(StripBuffer::pool_stats().recycles, 1U);
  {
    // Same size class: must come from the free list, not the heap.
    const StripBuffer second = StripBuffer::allocate(100);
    (void)second;
  }
  EXPECT_EQ(StripBuffer::pool_stats().fresh_allocs, 1U);
  EXPECT_EQ(StripBuffer::pool_stats().pool_hits, 1U);
  EXPECT_EQ(StripBuffer::pool_stats().live_payloads, 0U);
  StripBuffer::trim_pool();
}

TEST(StripBufferTest, OversizePayloadsBypassThePool) {
  StripBuffer::trim_pool();
  StripBuffer::reset_pool_stats();
  {
    const StripBuffer huge = StripBuffer::allocate(65ULL * 1024 * 1024);
    EXPECT_EQ(huge.size(), 65ULL * 1024 * 1024);
  }
  EXPECT_EQ(StripBuffer::pool_stats().oversize_allocs, 1U);
  EXPECT_EQ(StripBuffer::pool_stats().recycles, 0U);
  EXPECT_EQ(StripBuffer::pool_stats().live_payloads, 0U);
}

TEST(StripBufferDeathTest, ViewBeyondLengthAborts) {
  const StripBuffer buffer = StripBuffer::copy_of(bytes_of({1, 2, 3}));
  EXPECT_DEATH((void)buffer.view(2, 2), "DAS_REQUIRE");
}

TEST(StripBufferDeathTest, ZeroLengthAllocateAborts) {
  EXPECT_DEATH((void)StripBuffer::allocate(0), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::pfs
