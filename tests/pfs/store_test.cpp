#include "pfs/store.hpp"

#include <gtest/gtest.h>

#include "pfs/strip_buffer.hpp"

namespace das::pfs {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

StripBuffer buffer_of(std::initializer_list<int> values) {
  return StripBuffer::copy_of(bytes_of(values));
}

std::vector<std::byte> stored(const ServerStore& store, FileId file,
                              std::uint64_t strip) {
  const auto bytes = store.bytes(file, strip);
  return std::vector<std::byte>(bytes.begin(), bytes.end());
}

TEST(ServerStoreTest, PutThenGet) {
  ServerStore store;
  store.put(0, 3, 4, buffer_of({1, 2, 3, 4}));
  EXPECT_TRUE(store.has(0, 3));
  EXPECT_FALSE(store.has(0, 4));
  EXPECT_FALSE(store.has(1, 3));
  EXPECT_EQ(stored(store, 0, 3), bytes_of({1, 2, 3, 4}));
  EXPECT_EQ(store.length(0, 3), 4U);
}

TEST(ServerStoreTest, TimingOnlyStripsHaveLengthButNoBytes) {
  ServerStore store;
  store.put(0, 0, 1024, {});
  EXPECT_TRUE(store.has(0, 0));
  EXPECT_EQ(store.length(0, 0), 1024U);
  EXPECT_TRUE(store.bytes(0, 0).empty());
  EXPECT_EQ(store.stored_bytes(), 1024U);
}

TEST(ServerStoreTest, DiskOffsetsAreSequentialByInsertion) {
  ServerStore store;
  store.put(0, 5, 100, {});
  store.put(0, 2, 100, {});
  store.put(1, 9, 50, {});
  EXPECT_EQ(store.disk_offset(0, 5), 0U);
  EXPECT_EQ(store.disk_offset(0, 2), 100U);
  EXPECT_EQ(store.disk_offset(1, 9), 200U);
}

TEST(ServerStoreTest, OverwriteKeepsOffsetAndLength) {
  ServerStore store;
  store.put(0, 0, 4, buffer_of({1, 1, 1, 1}));
  const auto offset = store.disk_offset(0, 0);
  store.put(0, 0, 4, buffer_of({2, 2, 2, 2}));
  EXPECT_EQ(store.disk_offset(0, 0), offset);
  EXPECT_EQ(stored(store, 0, 0), bytes_of({2, 2, 2, 2}));
  EXPECT_EQ(store.stored_bytes(), 4U);  // not double counted
}

TEST(ServerStoreTest, EraseFreesAccounting) {
  ServerStore store;
  store.put(0, 0, 100, {});
  store.put(0, 1, 100, {});
  store.erase(0, 0);
  EXPECT_FALSE(store.has(0, 0));
  EXPECT_EQ(store.stored_bytes(), 100U);
  EXPECT_EQ(store.strip_count(), 1U);
}

// Re-laying out a file erases and re-puts strips; the disk model must not
// silently defragment across that round trip.
TEST(ServerStoreTest, EraseThenRePutKeepsDiskOffsetStable) {
  ServerStore store;
  store.put(0, 0, 64, {});
  store.put(0, 1, 64, {});
  store.put(0, 2, 64, {});
  const auto offset0 = store.disk_offset(0, 0);
  const auto offset1 = store.disk_offset(0, 1);

  store.erase(0, 1);
  store.put(0, 3, 64, {});  // new strip lands past the old high-water mark
  store.put(0, 1, 64, {});  // re-put gets its original position back

  EXPECT_EQ(store.disk_offset(0, 0), offset0);
  EXPECT_EQ(store.disk_offset(0, 1), offset1);
  EXPECT_EQ(store.disk_offset(0, 3), 192U);
}

TEST(ServerStoreTest, StoredBytesExactAcrossReplacePut) {
  ServerStore store;
  store.put(0, 0, 100, {});
  store.put(0, 1, 50, {});
  EXPECT_EQ(store.stored_bytes(), 150U);
  store.put(0, 0, 100, {});  // replace: same length, counted once
  EXPECT_EQ(store.stored_bytes(), 150U);
  store.erase(0, 1);
  EXPECT_EQ(store.stored_bytes(), 100U);
  store.put(0, 1, 50, {});  // re-put restores the accounting exactly
  EXPECT_EQ(store.stored_bytes(), 150U);
}

// Timing-only and data-carrying stores must agree on every length-derived
// quantity; only the payload presence differs.
TEST(ServerStoreTest, TimingAndDataModesAgreeOnLengths) {
  ServerStore timing;
  ServerStore data;
  const std::vector<std::byte> strip0 = bytes_of({1, 2, 3, 4});
  const std::vector<std::byte> strip1 = bytes_of({5, 6});
  timing.put(0, 0, strip0.size(), {});
  timing.put(0, 1, strip1.size(), {});
  data.put(0, 0, strip0.size(), StripBuffer::copy_of(strip0));
  data.put(0, 1, strip1.size(), StripBuffer::copy_of(strip1));

  EXPECT_EQ(timing.length(0, 0), data.length(0, 0));
  EXPECT_EQ(timing.length(0, 1), data.length(0, 1));
  EXPECT_EQ(timing.disk_offset(0, 0), data.disk_offset(0, 0));
  EXPECT_EQ(timing.disk_offset(0, 1), data.disk_offset(0, 1));
  EXPECT_EQ(timing.stored_bytes(), data.stored_bytes());
  EXPECT_EQ(timing.strip_count(), data.strip_count());
  EXPECT_TRUE(timing.bytes(0, 0).empty());
  EXPECT_EQ(stored(data, 0, 0), strip0);
}

TEST(ServerStoreTest, BufferHandleSurvivesReplaceAndErase) {
  ServerStore store;
  store.put(0, 0, 4, buffer_of({1, 2, 3, 4}));
  const StripBuffer snapshot = store.buffer(0, 0);
  store.put(0, 0, 4, buffer_of({9, 9, 9, 9}));
  EXPECT_EQ(snapshot.to_vector(), bytes_of({1, 2, 3, 4}));
  EXPECT_EQ(stored(store, 0, 0), bytes_of({9, 9, 9, 9}));
  store.erase(0, 0);
  EXPECT_EQ(snapshot.to_vector(), bytes_of({1, 2, 3, 4}));
}

TEST(ServerStoreTest, ReserveFilePresizesWithoutStoring) {
  ServerStore store;
  store.reserve_file(2, 16);
  EXPECT_FALSE(store.has(2, 0));
  EXPECT_EQ(store.strip_count(), 0U);
  store.put(2, 15, 8, {});
  EXPECT_TRUE(store.has(2, 15));
  EXPECT_EQ(store.strip_count(), 1U);
}

TEST(ServerStoreDeathTest, LengthMismatchAborts) {
  ServerStore store;
  EXPECT_DEATH(store.put(0, 0, 3, buffer_of({1, 2})), "DAS_REQUIRE");
  store.put(0, 0, 2, buffer_of({1, 2}));
  EXPECT_DEATH(store.put(0, 0, 5, {}), "DAS_REQUIRE");
}

TEST(ServerStoreDeathTest, MissingStripAborts) {
  ServerStore store;
  EXPECT_DEATH(store.bytes(0, 0), "DAS_REQUIRE");
  EXPECT_DEATH(store.erase(0, 0), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::pfs
