#include "pfs/store.hpp"

#include <gtest/gtest.h>

namespace das::pfs {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(ServerStoreTest, PutThenGet) {
  ServerStore store;
  store.put(0, 3, 4, bytes_of({1, 2, 3, 4}));
  EXPECT_TRUE(store.has(0, 3));
  EXPECT_FALSE(store.has(0, 4));
  EXPECT_FALSE(store.has(1, 3));
  EXPECT_EQ(store.bytes(0, 3), bytes_of({1, 2, 3, 4}));
  EXPECT_EQ(store.length(0, 3), 4U);
}

TEST(ServerStoreTest, TimingOnlyStripsHaveLengthButNoBytes) {
  ServerStore store;
  store.put(0, 0, 1024, {});
  EXPECT_TRUE(store.has(0, 0));
  EXPECT_EQ(store.length(0, 0), 1024U);
  EXPECT_TRUE(store.bytes(0, 0).empty());
  EXPECT_EQ(store.stored_bytes(), 1024U);
}

TEST(ServerStoreTest, DiskOffsetsAreSequentialByInsertion) {
  ServerStore store;
  store.put(0, 5, 100, {});
  store.put(0, 2, 100, {});
  store.put(1, 9, 50, {});
  EXPECT_EQ(store.disk_offset(0, 5), 0U);
  EXPECT_EQ(store.disk_offset(0, 2), 100U);
  EXPECT_EQ(store.disk_offset(1, 9), 200U);
}

TEST(ServerStoreTest, OverwriteKeepsOffsetAndLength) {
  ServerStore store;
  store.put(0, 0, 4, bytes_of({1, 1, 1, 1}));
  const auto offset = store.disk_offset(0, 0);
  store.put(0, 0, 4, bytes_of({2, 2, 2, 2}));
  EXPECT_EQ(store.disk_offset(0, 0), offset);
  EXPECT_EQ(store.bytes(0, 0), bytes_of({2, 2, 2, 2}));
  EXPECT_EQ(store.stored_bytes(), 4U);  // not double counted
}

TEST(ServerStoreTest, EraseFreesAccounting) {
  ServerStore store;
  store.put(0, 0, 100, {});
  store.put(0, 1, 100, {});
  store.erase(0, 0);
  EXPECT_FALSE(store.has(0, 0));
  EXPECT_EQ(store.stored_bytes(), 100U);
  EXPECT_EQ(store.strip_count(), 1U);
}

TEST(ServerStoreDeathTest, LengthMismatchAborts) {
  ServerStore store;
  EXPECT_DEATH(store.put(0, 0, 3, bytes_of({1, 2})), "DAS_REQUIRE");
  store.put(0, 0, 2, bytes_of({1, 2}));
  EXPECT_DEATH(store.put(0, 0, 5, {}), "DAS_REQUIRE");
}

TEST(ServerStoreDeathTest, MissingStripAborts) {
  ServerStore store;
  EXPECT_DEATH(store.bytes(0, 0), "DAS_REQUIRE");
  EXPECT_DEATH(store.erase(0, 0), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::pfs
