// Online layout migration: content preservation, mid-migration reads,
// retire-not-erase copy versioning, epoch advance, and move-back
// reinstatement.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "pfs/client.hpp"
#include "pfs/migrate.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"

namespace das::pfs {
namespace {

class MigrateFixture : public ::testing::Test {
 protected:
  MigrateFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 5;  // 4 servers + 1 client
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<Pfs>(sim_, *network_,
                                 std::vector<net::NodeId>{0, 1, 2, 3},
                                 storage::DiskConfig{});
    migrator_ = std::make_unique<LayoutMigrator>(sim_, *pfs_);
  }

  FileId make_file(std::uint64_t strips, std::unique_ptr<Layout> layout) {
    FileMeta meta;
    meta.name = "f";
    meta.size_bytes = strips * 64;
    meta.strip_size = 64;
    data_.resize(meta.size_bytes);
    for (std::uint64_t i = 0; i < meta.size_bytes; ++i) {
      data_[i] = static_cast<std::byte>(i % 251);
    }
    return pfs_->create_file(meta, std::move(layout), &data_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<Pfs> pfs_;
  std::unique_ptr<LayoutMigrator> migrator_;
  std::vector<std::byte> data_;
};

TEST_F(MigrateFixture, RoundRobinToGroupedPreservesContent) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  bool done = false;
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4),
                     MigrateOptions{}, [&](const MigrationStats&) {
                       done = true;
                     });
  EXPECT_TRUE(migrator_->busy());
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(migrator_->busy());
  EXPECT_FALSE(pfs_->migrating(f));
  EXPECT_EQ(pfs_->gather_bytes(f), data_);
  EXPECT_EQ(pfs_->layout(f).name(), "grouped(D=4,r=4)");
}

TEST_F(MigrateFixture, NewHoldersHaveEveryStripAfterwards) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  migrator_->migrate(f, std::make_unique<DasReplicatedLayout>(4, 4, 1),
                     MigrateOptions{}, nullptr);
  sim_.run();
  const Layout& layout = pfs_->layout(f);
  for (std::uint64_t s = 0; s < 16; ++s) {
    for (const ServerIndex holder : layout.holders(s, 16)) {
      EXPECT_TRUE(pfs_->server(holder).store().has(f, s));
    }
  }
}

TEST_F(MigrateFixture, OldCopiesAreRetiredNotErased) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4),
                     MigrateOptions{}, nullptr);
  sim_.run();
  // Grouped(4,4): strip s lives on server s/4; round-robin had it on s%4.
  // Where those differ the old copy must be readable (in-flight reads may
  // still resolve to it) but no longer authoritative.
  std::uint64_t retired = 0;
  for (std::uint64_t s = 0; s < 16; ++s) {
    const ServerIndex old_holder = static_cast<ServerIndex>(s % 4);
    const ServerIndex new_holder = static_cast<ServerIndex>(s / 4);
    if (old_holder == new_holder) continue;
    EXPECT_FALSE(pfs_->server(old_holder).store().has(f, s));
    EXPECT_TRUE(pfs_->server(old_holder).store().readable(f, s));
    ++retired;
  }
  EXPECT_GT(retired, 0U);
  // Accounting counts only authoritative copies: exactly one per strip.
  EXPECT_EQ(pfs_->total_stored_bytes(), 16U * 64);
}

TEST_F(MigrateFixture, EpochAdvancesOncePerMigration) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  EXPECT_EQ(pfs_->layout_epoch(f), 0U);
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4),
                     MigrateOptions{}, nullptr);
  sim_.run();
  EXPECT_EQ(pfs_->layout_epoch(f), 1U);
}

TEST_F(MigrateFixture, StatsAccounting) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  MigrateOptions options;
  options.strips_per_round = 4;
  MigrationStats stats;
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4), options,
                     [&](const MigrationStats& s) { stats = s; });
  sim_.run();
  EXPECT_EQ(stats.strips_total, 16U);
  // Strips already in place (s%4 == s/4: 0, 5, 10, 15) move nothing.
  EXPECT_EQ(stats.strips_moved, 12U);
  EXPECT_EQ(stats.transfers, 12U);
  EXPECT_EQ(stats.bytes_moved, 12U * 64);
  EXPECT_EQ(stats.rounds, 4U);
  EXPECT_GT(stats.finished_at, stats.started_at);
  EXPECT_EQ(migrator_->total_migrations(), 1U);
  EXPECT_EQ(migrator_->total_bytes_moved(), 12U * 64);
}

TEST_F(MigrateFixture, TransfersAreServerToServer) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4),
                     MigrateOptions{}, nullptr);
  sim_.run();
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kServerServer),
            12U * 64);
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kClientServer), 0U);
}

TEST_F(MigrateFixture, ReadsMidMigrationSeeCorrectBytes) {
  const FileId f = make_file(64, std::make_unique<RoundRobinLayout>(4));
  PfsClient client(sim_, *network_, *pfs_, /*node=*/4);

  MigrateOptions options;
  options.strips_per_round = 1;  // keep the migration in flight a while
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 16), options,
                     nullptr);

  // Fire full-file reads at staggered points of the migration; every one
  // must assemble the original content regardless of where the frontier is.
  std::vector<std::vector<std::byte>> results(4);
  std::uint32_t reads_done = 0;
  for (int i = 0; i < 4; ++i) {
    sim_.schedule_at(
        sim::microseconds(1 + 40 * i),
        [&, i]() {
          auto* out = &results[i];
          out->assign(data_.size(), std::byte{0});
          client.read_range(
              f, 0, data_.size(), [&]() { ++reads_done; },
              [out](const StripRef& ref, const StripBuffer& payload) {
                ASSERT_EQ(payload.size(), ref.length);
                std::memcpy(out->data() + ref.offset, payload.data(),
                            payload.size());
              });
        },
        "test.read");
  }
  sim_.run();
  EXPECT_EQ(reads_done, 4U);
  for (const auto& r : results) EXPECT_EQ(r, data_);
}

TEST_F(MigrateFixture, MoveBackReinstatesRetiredCopiesWithoutTraffic) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4),
                     MigrateOptions{}, nullptr);
  sim_.run();
  const std::uint64_t bytes_after_first =
      network_->bytes_delivered(net::TrafficClass::kServerServer);

  MigrationStats stats;
  migrator_->migrate(f, std::make_unique<RoundRobinLayout>(4),
                     MigrateOptions{},
                     [&](const MigrationStats& s) { stats = s; });
  sim_.run();
  // Every displaced strip's old copy is still on the original server in
  // retired form: moving back reinstates locally, no transfers.
  EXPECT_EQ(stats.strips_reinstated, 12U);
  EXPECT_EQ(stats.transfers, 0U);
  EXPECT_EQ(network_->bytes_delivered(net::TrafficClass::kServerServer),
            bytes_after_first);
  EXPECT_EQ(pfs_->gather_bytes(f), data_);
  EXPECT_EQ(pfs_->layout_epoch(f), 2U);
}

TEST_F(MigrateFixture, OfflineRedistributeRefusedDuringMigration) {
  const FileId f = make_file(16, std::make_unique<RoundRobinLayout>(4));
  migrator_->migrate(f, std::make_unique<GroupedLayout>(4, 4),
                     MigrateOptions{}, nullptr);
  EXPECT_TRUE(pfs_->migrating(f));
  EXPECT_DEATH(
      pfs_->redistribute(f, std::make_unique<RoundRobinLayout>(4), nullptr),
      "DAS_REQUIRE");
  sim_.run();
}

TEST_F(MigrateFixture, RetiredSlotServesAndReinstates) {
  // Store-level contract behind the CoW protocol: retire keeps the payload
  // readable, put on a retired slot reinstates it.
  const FileId f = make_file(4, std::make_unique<RoundRobinLayout>(4));
  ServerStore& store = pfs_->server(0).store();
  ASSERT_TRUE(store.has(f, 0));
  const std::vector<std::byte> before = store.buffer(f, 0).to_vector();
  const std::uint64_t stored = store.stored_bytes();

  store.retire(f, 0);
  EXPECT_FALSE(store.has(f, 0));
  EXPECT_TRUE(store.readable(f, 0));
  EXPECT_EQ(store.buffer(f, 0).to_vector(), before);
  EXPECT_EQ(store.stored_bytes(), stored - 64);

  store.put(f, 0, 64, store.buffer(f, 0));
  EXPECT_TRUE(store.has(f, 0));
  EXPECT_EQ(store.stored_bytes(), stored);
  EXPECT_EQ(store.buffer(f, 0).to_vector(), before);
}

}  // namespace
}  // namespace das::pfs
