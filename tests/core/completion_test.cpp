#include "core/completion.hpp"

#include <gtest/gtest.h>

namespace das::core {
namespace {

TEST(BarrierTest, FiresWhenSealedAndDrained) {
  int fired = 0;
  CompletionBarrier barrier([&] { ++fired; });
  barrier.add(2);
  barrier.arrive();
  EXPECT_EQ(fired, 0);
  barrier.arrive();
  EXPECT_EQ(fired, 0);  // not sealed yet
  barrier.seal();
  EXPECT_EQ(fired, 1);
}

TEST(BarrierTest, SealBeforeArrivalsWaits) {
  int fired = 0;
  CompletionBarrier barrier([&] { ++fired; });
  barrier.add(3);
  barrier.seal();
  barrier.arrive();
  barrier.arrive();
  EXPECT_EQ(fired, 0);
  barrier.arrive();
  EXPECT_EQ(fired, 1);
}

TEST(BarrierTest, EmptySealedBarrierFiresImmediately) {
  int fired = 0;
  CompletionBarrier barrier([&] { ++fired; });
  barrier.seal();
  EXPECT_EQ(fired, 1);
}

TEST(BarrierTest, FiresExactlyOnce) {
  int fired = 0;
  CompletionBarrier barrier([&] { ++fired; });
  barrier.add(1);
  barrier.seal();
  barrier.arrive();
  barrier.seal();  // extra seal after firing must not re-fire
  EXPECT_EQ(fired, 1);
}

TEST(BarrierTest, NullCallbackIsTolerated) {
  CompletionBarrier barrier(nullptr);
  barrier.add();
  barrier.arrive();
  barrier.seal();
  EXPECT_EQ(barrier.outstanding(), 0U);
}

TEST(BarrierTest, OutstandingTracksBookkeeping) {
  CompletionBarrier barrier([] {});
  barrier.add(5);
  barrier.arrive();
  barrier.arrive();
  EXPECT_EQ(barrier.outstanding(), 3U);
}

TEST(BarrierTest, CallbackMayDestroyTheBarrier) {
  auto barrier = std::make_shared<CompletionBarrier>(nullptr);
  // Re-create with a callback that drops the only external reference.
  std::shared_ptr<CompletionBarrier> keeper;
  barrier = std::make_shared<CompletionBarrier>([&keeper] { keeper.reset(); });
  keeper = barrier;
  barrier->add(1);
  barrier->seal();
  std::weak_ptr<CompletionBarrier> watch = barrier;
  barrier.reset();
  EXPECT_FALSE(watch.expired());  // keeper still holds it
  watch.lock()->arrive();         // fires; callback drops keeper
  EXPECT_TRUE(watch.expired());
}

TEST(BarrierDeathTest, ArriveWithoutAddAborts) {
  CompletionBarrier barrier([] {});
  EXPECT_DEATH(barrier.arrive(), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::core
