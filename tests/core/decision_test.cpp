#include "core/decision.hpp"

#include <gtest/gtest.h>

#include "kernels/features.hpp"

namespace das::core {
namespace {

pfs::FileMeta raster_meta(std::uint64_t strips) {
  pfs::FileMeta m;
  m.name = "f";
  m.strip_size = 64;
  m.element_size = 4;
  m.size_bytes = strips * m.strip_size;
  m.raster_width = 15;  // (W+1)*E == strip: stencil reach = one strip
  m.raster_height = static_cast<std::uint32_t>(strips * 64 /
                                               ((15 + 1) * 4));
  return m;
}

DistributionConfig dist_config() {
  DistributionConfig cfg;
  cfg.group_size = 16;
  cfg.max_capacity_overhead = 0.25;
  return cfg;
}

TEST(RedistributionBytesTest, CountsOnlyNewHolders) {
  const auto meta = raster_meta(16);
  const pfs::RoundRobinLayout rr(4);
  const pfs::GroupedLayout grouped(4, 4);
  // Strips keeping their server: s % 4 == (s/4) % 4 -> {0, 5, 10, 15}.
  EXPECT_EQ(redistribution_bytes(meta, rr, grouped), (16U - 4U) * 64);
  EXPECT_EQ(redistribution_bytes(meta, rr, rr), 0U);
}

TEST(RedistributionBytesTest, ReplicasCostExtraCopies) {
  const auto meta = raster_meta(16);
  const pfs::GroupedLayout grouped(4, 4);
  const pfs::DasReplicatedLayout das(4, 4, 1);
  // Same primaries; only the halo copies move: 3 backward + 3 forward.
  EXPECT_EQ(redistribution_bytes(meta, grouped, das), 6U * 64);
}

TEST(DecisionTest, StencilOnRoundRobinWithPipelineRedistributes) {
  const DecisionEngine engine(dist_config());
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");
  const Decision d =
      engine.decide(meta, rr, features, meta.size_bytes, /*pipeline=*/4);
  EXPECT_EQ(d.action, OffloadAction::kOffloadAfterRedistribution);
  ASSERT_TRUE(d.target.has_value());
  EXPECT_EQ(d.target->halo, 1U);
  EXPECT_GT(d.redistribution_bytes, 0U);
  EXPECT_FALSE(d.rationale.empty());
}

TEST(DecisionTest, SingleOperationOnRoundRobinIsServedNormally) {
  // One operation cannot amortize moving nearly the whole file around.
  const DecisionEngine engine(dist_config());
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");
  const Decision d =
      engine.decide(meta, rr, features, meta.size_bytes, /*pipeline=*/1);
  EXPECT_EQ(d.action, OffloadAction::kServeNormal);
}

TEST(DecisionTest, PreDistributedFileIsOffloadedDirectly) {
  const DecisionEngine engine(dist_config());
  const auto meta = raster_meta(1024);
  const pfs::DasReplicatedLayout das(4, 16, 1);
  const auto features = kernels::eight_neighbor_pattern("op");
  const Decision d = engine.decide(meta, das, features, meta.size_bytes, 1);
  EXPECT_EQ(d.action, OffloadAction::kOffload);
  EXPECT_EQ(d.current_forecast.active_strip_fetch_bytes, 0U);
}

TEST(DecisionTest, DependenceFreeOperatorOffloadsFromRoundRobin) {
  const DecisionEngine engine(dist_config());
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(4);
  kernels::KernelFeatures features;
  features.name = "pointwise";
  const Decision d = engine.decide(meta, rr, features, meta.size_bytes, 1);
  EXPECT_EQ(d.action, OffloadAction::kOffload);
  EXPECT_EQ(d.predicted_bytes, 0U);
}

TEST(DecisionTest, InfeasiblePlanFallsBackToNormal) {
  // The file is too small for the capacity budget: no target placement
  // exists, and the round-robin dependence traffic is prohibitive.
  const DecisionEngine engine(dist_config());
  const auto meta = raster_meta(16);
  const pfs::RoundRobinLayout rr(4);
  const auto features = kernels::eight_neighbor_pattern("op");
  const Decision d = engine.decide(meta, rr, features, meta.size_bytes, 8);
  EXPECT_EQ(d.action, OffloadAction::kServeNormal);
  EXPECT_FALSE(d.target.has_value());
}

TEST(DecisionTest, LongerPipelinesFavourRedistribution) {
  const DecisionEngine engine(dist_config());
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");
  const Decision once = engine.decide(meta, rr, features, meta.size_bytes, 1);
  const Decision often =
      engine.decide(meta, rr, features, meta.size_bytes, 16);
  EXPECT_EQ(once.action, OffloadAction::kServeNormal);
  EXPECT_EQ(often.action, OffloadAction::kOffloadAfterRedistribution);
  // Per-operation predicted bytes shrink as the layout cost amortizes.
  EXPECT_LT(static_cast<double>(often.predicted_bytes) / 16.0,
            static_cast<double>(once.predicted_bytes));
}

TEST(DecisionDeathTest, RequiresRasterGeometry) {
  const DecisionEngine engine(dist_config());
  pfs::FileMeta meta = raster_meta(64);
  meta.raster_width = 0;
  const pfs::RoundRobinLayout rr(4);
  EXPECT_DEATH(engine.decide(meta, rr, kernels::eight_neighbor_pattern("op"),
                             meta.size_bytes, 1),
               "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::core
