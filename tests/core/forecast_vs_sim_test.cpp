// Model-vs-machine agreement: the bandwidth predictor's strip-granular
// forecast (what the decision engine trusts) must match what the active
// executor actually moves, byte for byte, across layouts and kernels.
// This is the property that makes the Fig. 3 accept/reject decision sound.
#include <gtest/gtest.h>

#include <tuple>

#include "core/active_executor.hpp"
#include "core/as_client.hpp"
#include "core/bandwidth_model.hpp"
#include "core/workload.hpp"
#include "kernels/registry.hpp"

namespace das::core {
namespace {

using AgreementCase = std::tuple<std::string,  // kernel
                                 std::uint64_t,  // group size r (1 = RR)
                                 std::uint64_t,  // halo replicas
                                 std::uint64_t>; // strips

std::string case_name(const ::testing::TestParamInfo<AgreementCase>& info) {
  std::string kernel = std::get<0>(info.param);
  for (auto& c : kernel) {
    if (c == '-') c = '_';
  }
  return kernel + "_r" + std::to_string(std::get<1>(info.param)) + "_h" +
         std::to_string(std::get<2>(info.param)) + "_n" +
         std::to_string(std::get<3>(info.param));
}

class ForecastAgreementTest
    : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(ForecastAgreementTest, StripFetchForecastMatchesTheExecutor) {
  const auto& [kernel_name, group, halo, strips] = GetParam();

  ClusterConfig config;
  config.storage_nodes = 4;
  config.compute_nodes = 4;
  config.job_startup = 0;
  Cluster cluster(config);
  const auto registry = kernels::standard_registry();
  const auto kernel = registry.create(kernel_name);

  WorkloadSpec spec;
  spec.strip_size = 4096;
  spec.element_size = 4;
  spec.raster_width = static_cast<std::uint32_t>(spec.strip_size / 4) - 1;
  spec.data_bytes = strips * spec.strip_size;
  const pfs::FileMeta meta = spec.make_meta("input");

  const PlacementSpec placement{4, group, halo};
  const auto offsets = kernel->features().resolve(meta.raster_width);
  const TrafficForecast forecast =
      forecast_traffic(meta, offsets, placement, meta.size_bytes);

  const auto input =
      cluster.pfs().create_file(meta, placement.make_layout(), nullptr);
  pfs::FileMeta out_meta = meta;
  out_meta.name = "output";
  const auto output = cluster.pfs().create_file(
      out_meta, placement.make_layout(), nullptr);

  const std::uint64_t needed =
      required_halo_strips(offsets, meta.element_size, meta.strip_size);
  ActiveExecutor executor(
      cluster, ActiveExecutor::Options{kernel.get(), needed, false});
  executor.start(input, output, nullptr);
  cluster.simulator().run();

  // Halo fetches: predicted == measured, exactly.
  EXPECT_EQ(forecast.active_strip_fetch_bytes,
            executor.halo_bytes_fetched());

  // All server-server traffic is fetches + output replica propagation.
  const auto server_server =
      cluster.network().bytes_delivered(net::TrafficClass::kServerServer);
  EXPECT_EQ(server_server,
            forecast.active_strip_fetch_bytes + forecast.replica_write_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndKernels, ForecastAgreementTest,
    ::testing::Values(
        // Round-robin: the NAS case, one strip of halo per side.
        AgreementCase{"flow-routing", 1, 0, 64},
        AgreementCase{"gaussian-2d", 1, 0, 64},
        AgreementCase{"laplacian-4", 1, 0, 96},
        // Grouped without replication: halo still crosses at group edges.
        AgreementCase{"flow-routing", 4, 0, 64},
        AgreementCase{"median-3x3", 8, 0, 64},
        // DAS layout: no fetches, only replica propagation.
        AgreementCase{"flow-routing", 8, 1, 64},
        AgreementCase{"gaussian-2d", 16, 1, 64},
        AgreementCase{"surface-slope", 8, 2, 64},
        // Dependence-free reduction: nothing moves between servers.
        AgreementCase{"raster-statistics", 1, 0, 64},
        // Partial tail strip.
        AgreementCase{"flow-routing", 4, 1, 63}),
    case_name);

TEST(ForecastAgreementTest, DecisionBytesAreHonestForTheDasPath) {
  // The decision engine's predicted_bytes for a pre-distributed offload
  // must equal what the run actually moves.
  ClusterConfig config;
  config.storage_nodes = 4;
  config.compute_nodes = 4;
  config.job_startup = 0;
  Cluster cluster(config);
  const auto registry = kernels::standard_registry();

  WorkloadSpec spec;
  spec.strip_size = 4096;
  spec.element_size = 4;
  spec.raster_width = static_cast<std::uint32_t>(spec.strip_size / 4) - 1;
  spec.data_bytes = 128 * spec.strip_size;
  const pfs::FileMeta meta = spec.make_meta("input");
  const auto input = cluster.pfs().create_file(
      meta, std::make_unique<pfs::DasReplicatedLayout>(4, 16, 1), nullptr);

  DistributionConfig distribution;
  distribution.group_size = 16;
  ActiveStorageClient client(cluster, registry, distribution);
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "flow-routing";
  const SubmissionResult result = client.submit(request, nullptr);
  cluster.simulator().run();

  ASSERT_EQ(result.decision.action, OffloadAction::kOffload);
  EXPECT_EQ(result.decision.predicted_bytes,
            cluster.network().bytes_delivered(
                net::TrafficClass::kServerServer));
}

}  // namespace
}  // namespace das::core
