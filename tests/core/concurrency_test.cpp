// Concurrent jobs on one simulated cluster: the executors must coexist
// (distinct files, shared resources) and contention must appear in the
// timing.
#include <gtest/gtest.h>

#include "core/active_executor.hpp"
#include "core/ts_executor.hpp"
#include "core/workload.hpp"
#include "kernels/registry.hpp"

namespace das::core {
namespace {

class ConcurrencyFixture : public ::testing::Test {
 protected:
  ConcurrencyFixture() : registry_(kernels::standard_registry()) {
    config_.storage_nodes = 4;
    config_.compute_nodes = 4;
    config_.job_startup = 0;
    cluster_ = std::make_unique<Cluster>(config_);
    kernel_ = registry_.create("flow-routing");
  }

  /// Creates an input/output pair for one job (timing mode).
  std::pair<pfs::FileId, pfs::FileId> make_job_files(const std::string& tag) {
    WorkloadSpec spec;
    spec.strip_size = 1ULL << 20;
    spec.element_size = 4;
    spec.raster_width = static_cast<std::uint32_t>(spec.strip_size / 4) - 1;
    spec.data_bytes = 512ULL << 20;
    pfs::FileMeta meta = spec.make_meta("in-" + tag);
    const auto input = cluster_->pfs().create_file(
        meta, std::make_unique<pfs::DasReplicatedLayout>(4, 16, 1), nullptr);
    meta.name = "out-" + tag;
    const auto output = cluster_->pfs().create_file(
        meta, std::make_unique<pfs::DasReplicatedLayout>(4, 16, 1), nullptr);
    return {input, output};
  }

  sim::SimTime run_active_jobs(std::size_t count) {
    std::vector<std::unique_ptr<ActiveExecutor>> executors;
    std::vector<sim::SimTime> finishes(count, -1);
    for (std::size_t i = 0; i < count; ++i) {
      const auto [input, output] = make_job_files(std::to_string(i));
      ActiveExecutor::Options opt{kernel_.get(), 1, false};
      executors.push_back(std::make_unique<ActiveExecutor>(*cluster_, opt));
      sim::SimTime* finish = &finishes[i];
      executors.back()->start(input, output, [this, finish]() {
        *finish = cluster_->simulator().now();
      });
    }
    cluster_->simulator().run();
    sim::SimTime last = 0;
    for (const sim::SimTime f : finishes) {
      EXPECT_GE(f, 0);
      last = std::max(last, f);
    }
    return last;
  }

  ClusterConfig config_;
  kernels::KernelRegistry registry_;
  std::unique_ptr<Cluster> cluster_;
  kernels::KernelPtr kernel_;
};

TEST_F(ConcurrencyFixture, TwoActiveJobsBothComplete) {
  EXPECT_GT(run_active_jobs(2), 0);
}

TEST_F(ConcurrencyFixture, ContentionRoughlyDoublesTheMakespan) {
  const sim::SimTime one = run_active_jobs(1);
  cluster_ = std::make_unique<Cluster>(config_);  // fresh cluster
  const sim::SimTime two = run_active_jobs(2);
  EXPECT_GT(two, static_cast<sim::SimTime>(1.7 * static_cast<double>(one)));
  EXPECT_LT(two, static_cast<sim::SimTime>(2.3 * static_cast<double>(one)));
}

TEST_F(ConcurrencyFixture, MixedExecutorsShareTheCluster) {
  const auto [in_a, out_a] = make_job_files("active");
  const auto [in_t, out_t] = make_job_files("ts");

  ActiveExecutor::Options aopt{kernel_.get(), 1, false};
  ActiveExecutor active(*cluster_, aopt);
  TsExecutor::Options topt{kernel_.get(), 1, false};
  TsExecutor ts(*cluster_, topt);

  bool active_done = false, ts_done = false;
  active.start(in_a, out_a, [&] { active_done = true; });
  ts.start(in_t, out_t, [&] { ts_done = true; });
  cluster_->simulator().run();
  EXPECT_TRUE(active_done);
  EXPECT_TRUE(ts_done);
  // Both traffic classes show up in one simulation.
  EXPECT_GT(cluster_->network().bytes_delivered(
                net::TrafficClass::kClientServer),
            0U);
  EXPECT_GT(cluster_->network().bytes_delivered(
                net::TrafficClass::kServerServer),
            0U);
}

}  // namespace
}  // namespace das::core
