#include "core/bandwidth_model.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "kernels/features.hpp"

namespace das::core {
namespace {

TEST(PlacementSpecTest, RoundTripThroughLayouts) {
  const PlacementSpec rr{4, 1, 0};
  EXPECT_EQ(PlacementSpec::from_layout(*rr.make_layout()), rr);

  const PlacementSpec grouped{4, 8, 0};
  EXPECT_EQ(PlacementSpec::from_layout(*grouped.make_layout()), grouped);

  const PlacementSpec das{12, 16, 2};
  EXPECT_EQ(PlacementSpec::from_layout(*das.make_layout()), das);
}

TEST(ElementLocationTest, MatchesPaperEquations) {
  // Eq. 1: strip(i) = i*E / strip_size; Eq. 2: location = strip mod D.
  const PlacementSpec rr{4, 1, 0};
  EXPECT_EQ(strip_of_element(0, 4, 64), 0U);
  EXPECT_EQ(strip_of_element(15, 4, 64), 0U);
  EXPECT_EQ(strip_of_element(16, 4, 64), 1U);
  EXPECT_EQ(location_of_element(16, 4, 64, rr), 1U);
  EXPECT_EQ(location_of_element(64, 4, 64, rr), 0U);  // strip 4 -> server 0

  // Eq. 14: with group size r the divisor becomes r * strip_size.
  const PlacementSpec grouped{4, 2, 0};
  EXPECT_EQ(location_of_element(16, 4, 64, grouped), 0U);  // strip 1, group 0
  EXPECT_EQ(location_of_element(32, 4, 64, grouped), 1U);  // strip 2, group 1
}

TEST(ElementLocationTest, AgreesWithConcreteLayout) {
  const PlacementSpec spec{5, 3, 0};
  const auto layout = spec.make_layout();
  for (std::uint64_t i = 0; i < 4000; i += 7) {
    EXPECT_EQ(location_of_element(i, 4, 64, spec),
              layout->primary(strip_of_element(i, 4, 64)));
  }
}

// The analytic remote-access fraction must match brute-force enumeration
// over the interior of a large file, for every placement shape.
using FractionCase = std::tuple<std::int64_t,   // offset (elements)
                                std::uint64_t,  // strip size (bytes)
                                std::uint64_t,  // group size r
                                std::uint64_t,  // halo
                                std::uint32_t>; // servers D

std::string fraction_case_name(
    const ::testing::TestParamInfo<FractionCase>& info) {
  const std::int64_t offset = std::get<0>(info.param);
  const std::string sign = offset < 0 ? "m" : "p";
  return sign + std::to_string(offset < 0 ? -offset : offset) + "_s" +
         std::to_string(std::get<1>(info.param)) + "_r" +
         std::to_string(std::get<2>(info.param)) + "_h" +
         std::to_string(std::get<3>(info.param)) + "_D" +
         std::to_string(std::get<4>(info.param));
}

class RemoteFractionTest : public ::testing::TestWithParam<FractionCase> {};

TEST_P(RemoteFractionTest, AnalyticMatchesBruteForce) {
  const auto [offset, strip, r, halo, servers] = GetParam();
  const std::uint32_t element_size = 4;
  const PlacementSpec spec{servers, r, halo};

  // Sample interior elements spanning many groups, starting far from the
  // file edges so edge suppression does not distort the measurement.
  const std::uint64_t group_elems = r * strip / element_size;
  const std::uint64_t begin =
      group_elems * servers * 2 +
      static_cast<std::uint64_t>(offset < 0 ? -offset : offset);
  const std::uint64_t end = begin + group_elems * servers * 8;

  const double analytic =
      remote_access_fraction(offset, element_size, strip, spec);
  const double measured =
      measure_remote_fraction(offset, element_size, strip, spec, begin, end);
  EXPECT_NEAR(analytic, measured, 1e-9)
      << "offset=" << offset << " strip=" << strip << " r=" << r
      << " halo=" << halo << " D=" << servers;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RemoteFractionTest,
    ::testing::Values(
        // Round-robin, unit offsets: tiny crossing fraction.
        FractionCase{1, 64, 1, 0, 4}, FractionCase{-1, 64, 1, 0, 4},
        // Row offsets equal to one strip: always remote under round-robin.
        FractionCase{16, 64, 1, 0, 4}, FractionCase{-16, 64, 1, 0, 4},
        // Offsets crossing within a group (partially remote).
        FractionCase{16, 64, 4, 0, 4}, FractionCase{24, 64, 4, 0, 4},
        // Halo replication absorbs adjacent-group crossings.
        FractionCase{16, 64, 4, 1, 4}, FractionCase{-16, 64, 4, 1, 4},
        FractionCase{40, 64, 4, 2, 4},
        // Offset spanning multiple groups.
        FractionCase{200, 64, 2, 0, 3}, FractionCase{-200, 64, 2, 0, 3},
        // Offset landing exactly D groups away: same server again.
        FractionCase{256, 64, 4, 0, 4},
        // Two servers; wrap-heavy.
        FractionCase{32, 64, 2, 1, 2}, FractionCase{48, 64, 3, 1, 2},
        // Odd strip-to-offset ratios.
        FractionCase{100, 256, 2, 0, 5}, FractionCase{-1000, 128, 8, 2, 6}),
    fraction_case_name);

TEST(RemoteFractionTest, ZeroOffsetIsLocal) {
  EXPECT_EQ(remote_access_fraction(0, 4, 64, PlacementSpec{4, 1, 0}), 0.0);
}

TEST(RemoteFractionTest, SingleServerIsAlwaysLocal) {
  EXPECT_EQ(remote_access_fraction(1000, 4, 64, PlacementSpec{1, 1, 0}),
            0.0);
}

TEST(RemoteFractionTest, HaloCoveringTheWholeReachIsFullyLocal) {
  // |offset| * E = 1 strip, halo = 1 strip: every crossing is absorbed.
  const PlacementSpec spec{4, 4, 1};
  EXPECT_EQ(remote_access_fraction(16, 4, 64, spec), 0.0);
  EXPECT_EQ(remote_access_fraction(-16, 4, 64, spec), 0.0);
}

TEST(RemoteFractionTest, RowNeighbourOnRoundRobinIsAlwaysRemote) {
  // The paper's Fig. 4/5 scenario: a row offset of exactly one strip under
  // round-robin lands on the next server for every element.
  EXPECT_EQ(remote_access_fraction(16, 4, 64, PlacementSpec{4, 1, 0}), 1.0);
}

TEST(BwCostTest, EightNeighbourCostUnderRoundRobin) {
  // Paper Eq. 5 on the worst-case geometry (one row per strip): the six
  // offsets reaching the previous/next row are remote for (almost) every
  // element; +-1 cross only at strip edges.
  const std::uint32_t width = 16;  // elements per row = per strip
  const auto offsets =
      kernels::eight_neighbor_pattern("op").resolve(width);
  const PlacementSpec rr{4, 1, 0};
  const double cost = bwcost_per_element(offsets, 4, 64, rr);
  // Six row-crossing offsets are fully remote: cost ~ 6 * E. The +-1 and
  // the +-(W+-1) variations shift by one element: tiny corrections.
  EXPECT_NEAR(cost, 6.0 * 4.0, 4.0 * 0.5);
  EXPECT_GT(cost, 4.0);  // far above the 2*E normal-I/O cost per element
}

TEST(BwCostTest, DasPlacementDrivesCostToZero) {
  const std::uint32_t width = 15;  // (W+1)*E == strip: reach = 1 strip
  const auto offsets =
      kernels::eight_neighbor_pattern("op").resolve(width);
  const PlacementSpec das{4, 4, 1};
  EXPECT_EQ(bwcost_per_element(offsets, 4, 64, das), 0.0);
}

TEST(PaperCriterionTest, Equation17) {
  // (stride * E) / (r * strip_size) mod D == 0.
  EXPECT_TRUE(paper_locality_criterion(10, 4, 64, 1, 4));    // 40/64 = 0
  EXPECT_FALSE(paper_locality_criterion(16, 4, 64, 1, 4));   // 64/64 = 1
  EXPECT_TRUE(paper_locality_criterion(64, 4, 64, 1, 4));    // 256/64 = 4
  EXPECT_TRUE(paper_locality_criterion(16, 4, 64, 4, 4));    // 64/256 = 0
  EXPECT_TRUE(paper_locality_criterion(128, 4, 64, 2, 4));   // 512/128 = 4
  EXPECT_FALSE(paper_locality_criterion(96, 4, 64, 2, 4));   // 384/128 = 3
}

TEST(PaperCriterionTest, NegativeStridesUseFlooredGroupDistance) {
  // An upward dependence that stays inside the previous group is one group
  // away, not zero: truncating division would call every stride in
  // (-group_bytes, 0) local and pass Eq. 17 for any server count.
  EXPECT_FALSE(paper_locality_criterion(-10, 4, 64, 1, 4));  // -40/64 -> -1
  EXPECT_FALSE(paper_locality_criterion(-16, 4, 64, 1, 4));  // exactly -1
  EXPECT_FALSE(paper_locality_criterion(-17, 4, 64, 1, 4));  // -68/64 -> -2
  // A full cycle of D groups up is local again, exactly like D groups down.
  EXPECT_TRUE(paper_locality_criterion(-64, 4, 64, 1, 4));   // -256/64 = -4
  EXPECT_TRUE(paper_locality_criterion(-128, 4, 64, 2, 4));  // -512/128 = -4
  // Symmetric offsets agree only when both land on a multiple of D.
  EXPECT_TRUE(paper_locality_criterion(64, 4, 64, 1, 4));
  EXPECT_TRUE(paper_locality_criterion(-64, 4, 64, 1, 4));
  EXPECT_TRUE(paper_locality_criterion(0, 4, 64, 1, 4));     // self
}

TEST(PaperCriterionTest, ExactModelExposesEq17Optimism) {
  // Eq. 17 calls a stride of one strip on a grouped layout "local"
  // (integer division truncates to 0 groups away), but without halo
  // replication a fraction of elements still cross: the exact model sees it.
  EXPECT_TRUE(paper_locality_criterion(16, 4, 64, 4, 4));
  EXPECT_GT(remote_access_fraction(16, 4, 64, PlacementSpec{4, 4, 0}), 0.0);
  // With the DAS halo in place the promise becomes true.
  EXPECT_EQ(remote_access_fraction(16, 4, 64, PlacementSpec{4, 4, 1}), 0.0);
}

TEST(RequiredHaloTest, CeilOfReachOverStrip) {
  EXPECT_EQ(required_halo_strips({-1, 1}, 4, 64), 1U);
  EXPECT_EQ(required_halo_strips({16}, 4, 64), 1U);    // exactly one strip
  EXPECT_EQ(required_halo_strips({17}, 4, 64), 2U);    // just over
  EXPECT_EQ(required_halo_strips({-33, 20}, 4, 64), 3U);
  EXPECT_EQ(required_halo_strips({}, 4, 64), 0U);
}

TEST(ForecastTest, NormalIoIsInputPlusOutput) {
  pfs::FileMeta meta;
  meta.name = "f";
  meta.size_bytes = 1 << 20;
  meta.strip_size = 1 << 10;
  meta.element_size = 4;
  const auto fc = forecast_traffic(meta, {}, PlacementSpec{4, 1, 0},
                                   meta.size_bytes);
  EXPECT_EQ(fc.normal_io_bytes, 2U << 20);
  EXPECT_EQ(fc.normal_critical_bytes, 1U << 20);
  EXPECT_EQ(fc.active_total_bytes(), 0U);
  EXPECT_TRUE(fc.offload_beneficial());
}

TEST(ForecastTest, RoundRobinStencilFetchesTwoStripsPerStrip) {
  pfs::FileMeta meta;
  meta.name = "f";
  meta.size_bytes = 64 * 1024;
  meta.strip_size = 1024;
  meta.element_size = 4;
  const std::uint32_t width = 255;  // reach (W+1)*E = 1024 = one strip
  const auto offsets = kernels::eight_neighbor_pattern("op").resolve(width);
  const auto fc =
      forecast_traffic(meta, offsets, PlacementSpec{4, 1, 0}, meta.size_bytes);
  // 64 strips, each fetching its two neighbours (file edges lose one each).
  EXPECT_EQ(fc.active_strip_fetch_bytes, (2 * 64 - 2) * 1024U);
  EXPECT_EQ(fc.replica_write_bytes, 0U);
  EXPECT_FALSE(fc.offload_beneficial());
}

TEST(ForecastTest, DasPlacementPaysOnlyReplicaPropagation) {
  pfs::FileMeta meta;
  meta.name = "f";
  meta.size_bytes = 64 * 1024;
  meta.strip_size = 1024;
  meta.element_size = 4;
  const std::uint32_t width = 255;
  const auto offsets = kernels::eight_neighbor_pattern("op").resolve(width);
  const PlacementSpec das{4, 4, 1};
  const auto fc = forecast_traffic(meta, offsets, das, meta.size_bytes);
  EXPECT_EQ(fc.active_strip_fetch_bytes, 0U);
  // 16 groups: all but the first replicate their first strip backward; all
  // but the last replicate their last strip forward -> 30 strip copies.
  EXPECT_EQ(fc.replica_write_bytes, 30U * 1024);
  EXPECT_TRUE(fc.offload_beneficial());
  EXPECT_EQ(fc.active_exact_bytes, 0.0);
}

}  // namespace
}  // namespace das::core
