// End-to-end strip-cache behaviour through run_scheme: repeated NAS passes
// over the same round-robin file hit the per-server caches, replacing
// server-to-server halo traffic with local memory copies — while a
// cache-off run reproduces the uncached byte flows exactly, and writes keep
// the caches coherent (correctness mode stays bit-exact across repeats).
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions nas_timing_options(std::uint32_t repeats,
                                    std::uint64_t cache_capacity,
                                    const std::string& policy = "lru") {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 256ULL << 20;  // 256 strips of 1 MiB
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.repeat_count = repeats;
  o.cluster.server_cache.enabled = cache_capacity > 0;
  o.cluster.server_cache.capacity_bytes = cache_capacity;
  o.cluster.server_cache.policy = policy;
  return o;
}

TEST(CacheIntegrationTest, CacheOffMatchesTheSeedByteFlowsExactly) {
  // A zero-capacity cache never attaches, so repeated and single runs with
  // it must match runs that never heard of the cache config at all.
  const RunReport off = run_scheme(nas_timing_options(1, 0));
  SchemeRunOptions disabled = nas_timing_options(1, 64ULL << 20);
  disabled.cluster.server_cache.enabled = false;
  const RunReport off2 = run_scheme(disabled);
  EXPECT_EQ(off.server_server_bytes, off2.server_server_bytes);
  EXPECT_EQ(off.client_server_bytes, off2.client_server_bytes);
  EXPECT_EQ(off.control_messages, off2.control_messages);
  EXPECT_DOUBLE_EQ(off.exec_seconds, off2.exec_seconds);
  EXPECT_EQ(off.cache_hits, 0U);
  EXPECT_EQ(off.cache_misses, 0U);
}

TEST(CacheIntegrationTest, RepeatsHitTheCacheAndShedHaloTraffic) {
  const std::uint32_t repeats = 4;
  const RunReport uncached = run_scheme(nas_timing_options(repeats, 0));
  const RunReport cached =
      run_scheme(nas_timing_options(repeats, 1ULL << 30));

  EXPECT_EQ(uncached.cache_hits, 0U);
  EXPECT_GT(cached.cache_hits, 0U);
  EXPECT_GT(cached.cache_hit_bytes, 0U);
  EXPECT_GT(cached.cache_hit_rate(), 0.5);  // 3 of 4 passes fully cached
  EXPECT_LT(cached.server_server_bytes, uncached.server_server_bytes);
  EXPECT_LT(cached.exec_seconds, uncached.exec_seconds);
}

TEST(CacheIntegrationTest, FirstPassIsAllMissesSoSinglePassGainsNothing) {
  const RunReport uncached = run_scheme(nas_timing_options(1, 0));
  const RunReport cached = run_scheme(nas_timing_options(1, 1ULL << 30));
  EXPECT_EQ(cached.cache_hits, 0U);
  EXPECT_GT(cached.cache_misses, 0U);
  EXPECT_EQ(cached.server_server_bytes, uncached.server_server_bytes);
}

TEST(CacheIntegrationTest, TinyCacheStillBoundsItself) {
  // One strip of capacity: almost everything evicts, nothing breaks, and
  // traffic is no worse than the uncached run.
  const RunReport uncached = run_scheme(nas_timing_options(3, 0));
  const RunReport cached =
      run_scheme(nas_timing_options(3, 1ULL << 20, "lfu"));
  EXPECT_GT(cached.cache_evictions, 0U);
  EXPECT_LE(cached.server_server_bytes, uncached.server_server_bytes);
}

TEST(CacheIntegrationTest, RepeatedDataModeRunsStayBitExact) {
  // Correctness mode with caching on: every pass rewrites the output file
  // (write invalidations keep the caches coherent) and the final output
  // still matches the sequential reference bit for bit.
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "median-3x3";
  o.workload.strip_size = 64;
  o.workload.element_size = 4;
  o.workload.data_bytes = 128 * 64;
  o.workload.with_data = true;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.repeat_count = 3;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 1ULL << 20;
  const RunReport report = run_scheme(o);
  EXPECT_TRUE(report.output_verified)
      << "max error " << report.output_max_error;
  EXPECT_GT(report.cache_hits, 0U);
}

TEST(CacheIntegrationTest, DasReplicatedLayoutHasNothingToCache) {
  SchemeRunOptions o = nas_timing_options(4, 1ULL << 30);
  o.scheme = Scheme::kDAS;
  o.distribution.group_size = 16;
  o.distribution.max_capacity_overhead = 1.0;
  const RunReport report = run_scheme(o);
  EXPECT_TRUE(report.offloaded);
  // The halo is replicated locally: no remote fetches, so no cache traffic.
  EXPECT_EQ(report.cache_hits + report.cache_misses, 0U);
}

}  // namespace
}  // namespace das::core
