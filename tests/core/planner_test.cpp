#include "core/distribution_planner.hpp"

#include <gtest/gtest.h>

#include "kernels/features.hpp"

namespace das::core {
namespace {

pfs::FileMeta meta_of(std::uint64_t strips, std::uint64_t strip_size = 64) {
  pfs::FileMeta m;
  m.name = "f";
  m.size_bytes = strips * strip_size;
  m.strip_size = strip_size;
  m.element_size = 4;
  return m;
}

DistributionConfig config_of(std::uint64_t group, double budget) {
  DistributionConfig cfg;
  cfg.group_size = group;
  cfg.max_capacity_overhead = budget;
  return cfg;
}

TEST(PlannerTest, NoDependenceMeansRoundRobin) {
  const DistributionPlanner planner(config_of(16, 0.25));
  const auto plan = planner.plan(meta_of(1024), {}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->group_size, 1U);
  EXPECT_EQ(plan->halo, 0U);
  EXPECT_EQ(plan->num_servers, 4U);
}

TEST(PlannerTest, StencilGetsOneStripHalo) {
  const DistributionPlanner planner(config_of(16, 0.25));
  // Reach 16 elements * 4 B = one 64 B strip.
  const auto plan = planner.plan(meta_of(1024), {-16, 16}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->halo, 1U);
  EXPECT_EQ(plan->group_size, 16U);
}

TEST(PlannerTest, CapacityBudgetForcesLargerGroups) {
  // halo 1 with a 5% budget: 2*1/r <= 0.05 -> r >= 40.
  const DistributionPlanner planner(config_of(16, 0.05));
  const auto plan = planner.plan(meta_of(4096), {-16, 16}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->group_size, 40U);
  EXPECT_LE(2.0 * static_cast<double>(plan->halo) /
                static_cast<double>(plan->group_size),
            0.05 + 1e-12);
}

TEST(PlannerTest, PreferredGroupSizeUsedWhenitFits) {
  const DistributionPlanner planner(config_of(32, 0.25));
  const auto plan = planner.plan(meta_of(4096), {-16, 16}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->group_size, 32U);
}

TEST(PlannerTest, ParallelismCapsGroupSize) {
  // 64 strips over 4 servers: at most r = 16 keeps every server busy.
  const DistributionPlanner planner(config_of(64, 0.25));
  const auto plan = planner.plan(meta_of(64), {-16, 16}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->group_size, 16U);
}

TEST(PlannerTest, InfeasibleWhenFileTooSmallForBudget) {
  // Budget demands r >= 16 but only 32 strips over 4 servers allow r <= 8.
  const DistributionPlanner planner(config_of(16, 0.125));
  EXPECT_FALSE(planner.plan(meta_of(32), {-16, 16}, 4).has_value());
}

TEST(PlannerTest, WideStencilGetsWiderHalo) {
  const DistributionPlanner planner(config_of(16, 1.0));
  // Reach 40 elements * 4 = 160 B = 2.5 strips -> halo 3.
  const auto plan = planner.plan(meta_of(4096), {-40, 40}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->halo, 3U);
  EXPECT_GE(plan->group_size, 6U);
}

TEST(PlannerTest, PlannedPlacementIsActuallyLocal) {
  const DistributionPlanner planner(config_of(16, 0.25));
  const std::vector<std::int64_t> offsets{-17, -16, -15, -1, 1, 15, 16, 17};
  const auto plan = planner.plan(meta_of(4096), offsets, 4);
  ASSERT_TRUE(plan.has_value());
  for (const std::int64_t off : offsets) {
    EXPECT_EQ(remote_access_fraction(off, 4, 64, *plan), 0.0)
        << "offset " << off;
  }
}

TEST(PlannerTest, ZeroBudgetDisablesTheCapacityConstraint) {
  const DistributionPlanner planner(config_of(4, 0.0));
  const auto plan = planner.plan(meta_of(1024), {-16, 16}, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->group_size, 4U);
}

}  // namespace
}  // namespace das::core
