// Public-API tests for the Active Storage Client: decision plumbing,
// Kernel Features catalog overrides, and end-to-end submissions.
#include "core/as_client.hpp"

#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "grid/serialize.hpp"

namespace das::core {
namespace {

class AsClientFixture : public ::testing::Test {
 protected:
  AsClientFixture() : registry_(kernels::standard_registry()) {
    config_.storage_nodes = 4;
    config_.compute_nodes = 4;
    config_.job_startup = 0;
    distribution_.group_size = 8;
    distribution_.max_capacity_overhead = 1.0;
    cluster_ = std::make_unique<Cluster>(config_);
    client_ = std::make_unique<ActiveStorageClient>(*cluster_, registry_,
                                                    distribution_);
  }

  pfs::FileId make_raster_file(std::unique_ptr<pfs::Layout> layout,
                               bool with_data = false) {
    spec_.strip_size = 64;
    spec_.element_size = 4;
    spec_.data_bytes = 128 * 64;
    spec_.with_data = with_data;
    pfs::FileMeta meta = spec_.make_meta("input");
    if (with_data) {
      const auto kernel = registry_.create("gaussian-2d");
      data_ = grid::to_bytes(make_input(spec_, *kernel));
      return cluster_->pfs().create_file(meta, std::move(layout), &data_);
    }
    return cluster_->pfs().create_file(meta, std::move(layout), nullptr);
  }

  ClusterConfig config_;
  DistributionConfig distribution_;
  kernels::KernelRegistry registry_;
  WorkloadSpec spec_;
  std::vector<std::byte> data_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ActiveStorageClient> client_;
};

TEST_F(AsClientFixture, OffloadsFromADependenceAwareLayout) {
  const pfs::FileId input = make_raster_file(
      std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2));
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "gaussian-2d";
  bool done = false;
  const SubmissionResult result =
      client_->submit(request, [&] { done = true; });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(result.offloaded);
  EXPECT_FALSE(result.redistributed);
  EXPECT_NE(result.output, pfs::kInvalidFile);
  ASSERT_NE(client_->last_active_executor(), nullptr);
  EXPECT_EQ(client_->last_active_executor()->halo_strips_fetched(), 0U);
}

TEST_F(AsClientFixture, ServesNormallyFromRoundRobinWithoutPipeline) {
  const pfs::FileId input =
      make_raster_file(std::make_unique<pfs::RoundRobinLayout>(4));
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "gaussian-2d";
  request.allow_redistribution = false;
  bool done = false;
  const SubmissionResult result =
      client_->submit(request, [&] { done = true; });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(result.offloaded);
  EXPECT_EQ(client_->last_active_executor(), nullptr);
}

TEST_F(AsClientFixture, OutputInheritsTheInputLayout) {
  const pfs::FileId input = make_raster_file(
      std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2));
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "median-3x3";
  const SubmissionResult result = client_->submit(request, nullptr);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->pfs().layout(result.output).name(),
            cluster_->pfs().layout(input).name());
}

TEST_F(AsClientFixture, CatalogOverridesTheBuiltInPattern) {
  // Declare gaussian-2d dependence-free through the catalog: the client
  // must then offload directly even from round-robin striping.
  kernels::FeaturesCatalog catalog;
  kernels::KernelFeatures record;
  record.name = "gaussian-2d";
  catalog.add(record);
  client_->set_features_catalog(&catalog);

  const pfs::FileId input =
      make_raster_file(std::make_unique<pfs::RoundRobinLayout>(4));
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "gaussian-2d";
  const SubmissionResult result = client_->submit(request, nullptr);
  cluster_->simulator().run();
  EXPECT_TRUE(result.offloaded);
  EXPECT_FALSE(result.redistributed);
  EXPECT_EQ(result.decision.action, OffloadAction::kOffload);
  // No dependence declared -> no halo fetches attempted.
  ASSERT_NE(client_->last_active_executor(), nullptr);
  EXPECT_EQ(client_->last_active_executor()->halo_strips_fetched(), 0U);
}

TEST_F(AsClientFixture, CatalogMissObeysTheKernelPattern) {
  kernels::FeaturesCatalog catalog;  // empty
  client_->set_features_catalog(&catalog);
  const pfs::FileId input =
      make_raster_file(std::make_unique<pfs::RoundRobinLayout>(4));
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "gaussian-2d";
  request.allow_redistribution = false;
  const SubmissionResult result = client_->submit(request, nullptr);
  cluster_->simulator().run();
  EXPECT_FALSE(result.offloaded);  // the real 8-neighbour pattern rejects
}

TEST_F(AsClientFixture, ReductionSubmissionHasNoOutputFile) {
  const pfs::FileId input =
      make_raster_file(std::make_unique<pfs::RoundRobinLayout>(4));
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "raster-statistics";
  bool done = false;
  const SubmissionResult result =
      client_->submit(request, [&] { done = true; });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(result.offloaded);
  EXPECT_EQ(result.output, pfs::kInvalidFile);
}

TEST_F(AsClientFixture, RedistributionPathDeliversVerifiedData) {
  const pfs::FileId input =
      make_raster_file(std::make_unique<pfs::RoundRobinLayout>(4),
                       /*with_data=*/true);
  ActiveRequest request;
  request.input = input;
  request.kernel_name = "gaussian-2d";
  request.pipeline_length = 8;
  request.data_mode = true;
  bool done = false;
  const SubmissionResult result =
      client_->submit(request, [&] { done = true; });
  cluster_->simulator().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.redistributed);
  EXPECT_GT(result.redistribution_bytes, 0U);

  const auto produced = grid::from_bytes(
      cluster_->pfs().gather_bytes(result.output), spec_.width(),
      spec_.height());
  const auto kernel = registry_.create("gaussian-2d");
  const auto reference =
      kernel->run_reference(grid::from_bytes(data_, spec_.width(),
                                             spec_.height()));
  EXPECT_EQ(produced, reference);
}

}  // namespace
}  // namespace das::core
