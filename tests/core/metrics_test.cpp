#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace das::core {
namespace {

RunReport sample_report() {
  RunReport r;
  r.scheme = "DAS";
  r.kernel = "flow-routing";
  r.data_bytes = 24ULL << 30;
  r.storage_nodes = 12;
  r.compute_nodes = 12;
  r.exec_seconds = 20.0;
  r.client_server_bytes = 1 << 20;
  r.server_server_bytes = 3ULL << 30;
  return r;
}

TEST(FormatBytesTest, PicksHumanUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(3ULL << 20), "3 MiB");
  EXPECT_EQ(format_bytes(24ULL << 30), "24 GiB");
  EXPECT_EQ(format_bytes(0), "0 B");
}

TEST(SustainedBandwidthTest, BytesPerSecond) {
  const RunReport r = sample_report();
  EXPECT_DOUBLE_EQ(r.sustained_bandwidth_bps(),
                   static_cast<double>(24ULL << 30) / 20.0);
}

TEST(SustainedBandwidthTest, ZeroTimeYieldsZero) {
  RunReport r;
  r.data_bytes = 100;
  EXPECT_DOUBLE_EQ(r.sustained_bandwidth_bps(), 0.0);
}

TEST(TableTest, ContainsHeaderAndRows) {
  const std::string table = format_report_table({sample_report()});
  EXPECT_NE(table.find("scheme"), std::string::npos);
  EXPECT_NE(table.find("DAS"), std::string::npos);
  EXPECT_NE(table.find("flow-routing"), std::string::npos);
  EXPECT_NE(table.find("24 GiB"), std::string::npos);
}

long comma_count(const std::string& s) {
  return std::count(s.begin(), s.end(), ',');
}

TEST(CsvTest, HeaderFieldCountMatchesRow) {
  const std::string header = report_csv_header();
  const std::string row = to_csv(sample_report());
  EXPECT_EQ(comma_count(header), comma_count(row));
  EXPECT_NE(row.find("DAS,flow-routing"), std::string::npos);
}

// Drift guard: anyone adding a RunReport column must update header and row
// together, for every scheme spelling the CSV can carry.
TEST(CsvTest, HeaderFieldCountMatchesRowForEveryScheme) {
  const long header_fields = comma_count(report_csv_header());
  for (const char* scheme : {"TS", "NAS", "DAS"}) {
    RunReport r = sample_report();
    r.scheme = scheme;
    r.net_queue_wait = {0.001, 0.002, 0.003};
    r.disk_service = {0.004, 0.005, 0.006};
    EXPECT_EQ(comma_count(to_csv(r)), header_fields) << scheme;
  }
}

TEST(AuditCsvTest, HeaderFieldCountMatchesRow) {
  RunReport r = sample_report();
  r.audit.valid = true;
  r.audit.action = "offload";
  r.audit.repeats = 2;
  r.audit.prefetch_depth = 2;
  r.audit.cache_capacity_bytes = 64ULL << 20;
  r.audit.predicted_halo_bytes = 1 << 20;
  r.audit.observed_halo_bytes = 1.5 * (1 << 20);
  r.audit.predicted_cache_hit_rate = 0.5;
  r.audit.observed_cache_hit_rate = 0.4;
  r.audit.observed_warm_cache_hit_rate = 0.6;
  r.audit.predicted_overlap = 2.0 / 3.0;
  r.audit.observed_overlap = 0.7;
  const std::string header = audit_csv_header();
  const std::string row = audit_to_csv(r);
  EXPECT_EQ(comma_count(header), comma_count(row));
  EXPECT_NE(row.find("DAS,flow-routing"), std::string::npos);
  EXPECT_NE(row.find("offload"), std::string::npos);
}

TEST(AuditTest, ResidualsAreObservedMinusPredicted) {
  DecisionAudit a;
  a.predicted_halo_bytes = 100;
  a.observed_halo_bytes = 140.0;
  a.predicted_cache_hit_rate = 0.5;
  a.observed_warm_cache_hit_rate = 0.8;
  a.predicted_overlap = 0.75;
  a.observed_overlap = 0.5;
  EXPECT_DOUBLE_EQ(a.halo_bytes_residual(), 40.0);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate_residual(), 0.3);
  EXPECT_DOUBLE_EQ(a.overlap_residual(), -0.25);
}

}  // namespace
}  // namespace das::core
