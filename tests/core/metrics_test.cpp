#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace das::core {
namespace {

RunReport sample_report() {
  RunReport r;
  r.scheme = "DAS";
  r.kernel = "flow-routing";
  r.data_bytes = 24ULL << 30;
  r.storage_nodes = 12;
  r.compute_nodes = 12;
  r.exec_seconds = 20.0;
  r.client_server_bytes = 1 << 20;
  r.server_server_bytes = 3ULL << 30;
  return r;
}

TEST(FormatBytesTest, PicksHumanUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(3ULL << 20), "3 MiB");
  EXPECT_EQ(format_bytes(24ULL << 30), "24 GiB");
  EXPECT_EQ(format_bytes(0), "0 B");
}

TEST(SustainedBandwidthTest, BytesPerSecond) {
  const RunReport r = sample_report();
  EXPECT_DOUBLE_EQ(r.sustained_bandwidth_bps(),
                   static_cast<double>(24ULL << 30) / 20.0);
}

TEST(SustainedBandwidthTest, ZeroTimeYieldsZero) {
  RunReport r;
  r.data_bytes = 100;
  EXPECT_DOUBLE_EQ(r.sustained_bandwidth_bps(), 0.0);
}

TEST(TableTest, ContainsHeaderAndRows) {
  const std::string table = format_report_table({sample_report()});
  EXPECT_NE(table.find("scheme"), std::string::npos);
  EXPECT_NE(table.find("DAS"), std::string::npos);
  EXPECT_NE(table.find("flow-routing"), std::string::npos);
  EXPECT_NE(table.find("24 GiB"), std::string::npos);
}

TEST(CsvTest, HeaderFieldCountMatchesRow) {
  const std::string header = report_csv_header();
  const std::string row = to_csv(sample_report());
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_NE(row.find("DAS,flow-routing"), std::string::npos);
}

}  // namespace
}  // namespace das::core
