// End-to-end scheme-runner tests: one run_scheme call per paper scheme, in
// correctness mode (small rasters, real bytes) and in paper-shape timing
// mode (large sizes, length-only).
#include "core/scheme.hpp"

#include <gtest/gtest.h>

namespace das::core {
namespace {

SchemeRunOptions data_options(Scheme scheme, const std::string& kernel) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = kernel;
  o.workload.strip_size = 64;
  o.workload.element_size = 4;
  o.workload.data_bytes = 128 * 64;  // 128 strips
  o.workload.with_data = true;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.distribution.group_size = 8;
  o.distribution.max_capacity_overhead = 1.0;  // small files in tests
  return o;
}

SchemeRunOptions timing_options(Scheme scheme, const std::string& kernel) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = kernel;
  o.workload.data_bytes = 2ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  return o;
}

class SchemeDataTest
    : public ::testing::TestWithParam<std::tuple<Scheme, std::string>> {};

TEST_P(SchemeDataTest, OutputMatchesSequentialReference) {
  const auto& [scheme, kernel] = GetParam();
  const RunReport report = run_scheme(data_options(scheme, kernel));
  EXPECT_TRUE(report.output_verified)
      << "max error " << report.output_max_error;
  EXPECT_DOUBLE_EQ(report.output_max_error, 0.0);
  EXPECT_GT(report.exec_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllKernels, SchemeDataTest,
    ::testing::Combine(
        ::testing::Values(Scheme::kTS, Scheme::kNAS, Scheme::kDAS),
        ::testing::Values("flow-routing", "gaussian-2d", "median-3x3")),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SchemeTrafficTest, TsUsesOnlyClientServerLinks) {
  const RunReport r = run_scheme(data_options(Scheme::kTS, "flow-routing"));
  EXPECT_GT(r.client_server_bytes, 0U);
  EXPECT_EQ(r.server_server_bytes, 0U);
  EXPECT_FALSE(r.offloaded);
}

TEST(SchemeTrafficTest, NasUsesOnlyServerLinks) {
  const RunReport r = run_scheme(data_options(Scheme::kNAS, "flow-routing"));
  EXPECT_EQ(r.client_server_bytes, 0U);
  EXPECT_GT(r.server_server_bytes, 0U);
  EXPECT_TRUE(r.offloaded);
}

TEST(SchemeTrafficTest, DasPreDistributedMovesOnlyReplicas) {
  const RunReport r = run_scheme(data_options(Scheme::kDAS, "flow-routing"));
  EXPECT_TRUE(r.offloaded);
  EXPECT_FALSE(r.redistributed);
  EXPECT_EQ(r.client_server_bytes, 0U);
  // Output halo replica propagation only: a small fraction of the file.
  EXPECT_LT(r.server_server_bytes, r.data_bytes);
  EXPECT_FALSE(r.decision_note.empty());
}

TEST(SchemeTrafficTest, DasWithoutPreDistributionRedistributesForPipelines) {
  SchemeRunOptions o = data_options(Scheme::kDAS, "flow-routing");
  o.pre_distributed = false;
  o.pipeline_length = 8;
  const RunReport r = run_scheme(o);
  EXPECT_TRUE(r.offloaded);
  EXPECT_TRUE(r.redistributed);
  EXPECT_GT(r.redistribution_bytes, 0U);
  EXPECT_TRUE(r.output_verified);
}

TEST(SchemeTimingTest, PaperOrderingDasBeatsTsBeatsNas) {
  const RunReport ts =
      run_scheme(timing_options(Scheme::kTS, "flow-routing"));
  const RunReport nas =
      run_scheme(timing_options(Scheme::kNAS, "flow-routing"));
  const RunReport das =
      run_scheme(timing_options(Scheme::kDAS, "flow-routing"));
  EXPECT_LT(das.exec_seconds, ts.exec_seconds);
  EXPECT_LT(ts.exec_seconds, nas.exec_seconds);
  // Paper Fig. 11: DAS over 30% faster than TS, over 60% than NAS is the
  // claim at 24 nodes; require the weaker always-true ordering margins here.
  EXPECT_LT(das.exec_seconds, 0.8 * ts.exec_seconds);
  EXPECT_LT(das.exec_seconds, 0.5 * nas.exec_seconds);
}

TEST(SchemeTimingTest, SustainedBandwidthFollowsTheSameOrdering) {
  const RunReport ts =
      run_scheme(timing_options(Scheme::kTS, "flow-routing"));
  const RunReport nas =
      run_scheme(timing_options(Scheme::kNAS, "flow-routing"));
  const RunReport das =
      run_scheme(timing_options(Scheme::kDAS, "flow-routing"));
  EXPECT_GT(das.sustained_bandwidth_bps(), ts.sustained_bandwidth_bps());
  EXPECT_GT(ts.sustained_bandwidth_bps(), nas.sustained_bandwidth_bps());
}

TEST(SchemeTimingTest, MoreDataTakesLonger) {
  SchemeRunOptions small = timing_options(Scheme::kDAS, "gaussian-2d");
  SchemeRunOptions large = small;
  large.workload.data_bytes = 4ULL << 30;
  EXPECT_LT(run_scheme(small).exec_seconds,
            run_scheme(large).exec_seconds);
}

TEST(SchemeTimingTest, MoreNodesAreFaster) {
  SchemeRunOptions few = timing_options(Scheme::kTS, "gaussian-2d");
  SchemeRunOptions many = few;
  many.cluster.storage_nodes = 8;
  many.cluster.compute_nodes = 8;
  EXPECT_GT(run_scheme(few).exec_seconds, run_scheme(many).exec_seconds);
}

TEST(SchemeTimingTest, ReportRecordsTheConfiguration) {
  const RunReport r = run_scheme(timing_options(Scheme::kNAS, "median-3x3"));
  EXPECT_EQ(r.scheme, "NAS");
  EXPECT_EQ(r.kernel, "median-3x3");
  EXPECT_EQ(r.data_bytes, 2ULL << 30);
  EXPECT_EQ(r.storage_nodes, 4U);
  EXPECT_EQ(r.compute_nodes, 4U);
  EXPECT_FALSE(r.data_mode);
  EXPECT_FALSE(r.output_verified);  // nothing to verify in timing mode
}

}  // namespace
}  // namespace das::core
