// Cache-aware offload decisions: a server-side strip cache big enough to
// hold the steady-state halo working set makes repeated offloading under
// the CURRENT layout cheaper than redistribution (or than normal I/O), so
// the engine flips its verdict — and a disabled or zero-capacity cache
// reproduces the uncached decisions exactly.
#include <gtest/gtest.h>

#include "cache/strip_cache.hpp"
#include "core/decision.hpp"
#include "kernels/features.hpp"

namespace das::core {
namespace {

pfs::FileMeta raster_meta(std::uint64_t strips) {
  pfs::FileMeta m;
  m.name = "f";
  m.strip_size = 64;
  m.element_size = 4;
  m.size_bytes = strips * m.strip_size;
  m.raster_width = 15;  // (W+1)*E == strip: stencil reach = one strip
  m.raster_height = static_cast<std::uint32_t>(strips * 64 /
                                               ((15 + 1) * 4));
  return m;
}

DistributionConfig dist_config() {
  DistributionConfig cfg;
  cfg.group_size = 16;
  cfg.max_capacity_overhead = 0.25;
  return cfg;
}

cache::CacheConfig cache_config(std::uint64_t capacity) {
  cache::CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bytes = capacity;
  return cfg;
}

TEST(CacheDecisionTest, LargeCacheFlipsRedistributionToOffloadAsIs) {
  // Uncached, 16 repeats of a stencil on round-robin favour paying the
  // one-time redistribution; with a cache that absorbs every repeat's halo
  // fetches, offloading as-is only pays the first pass and wins.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  const Decision before = uncached.decide(meta, rr, features, meta.size_bytes,
                                          /*pipeline=*/1, /*repeats=*/16);
  EXPECT_EQ(before.action, OffloadAction::kOffloadAfterRedistribution);
  EXPECT_EQ(before.predicted_hit_rate, 0.0);

  const DecisionEngine cached(dist_config(), cache_config(1ULL << 30));
  const Decision after = cached.decide(meta, rr, features, meta.size_bytes,
                                       /*pipeline=*/1, /*repeats=*/16);
  EXPECT_EQ(after.action, OffloadAction::kOffload);
  EXPECT_DOUBLE_EQ(after.predicted_hit_rate, 1.0);
  EXPECT_LT(after.predicted_bytes, before.predicted_bytes);
}

TEST(CacheDecisionTest, LargeCacheFlipsNormalServiceToOffload) {
  // No feasible target placement exists for this small file, so uncached
  // repeats are served as normal I/O; the cache makes repeated offloading
  // under round-robin cheaper than shipping the file every pass.
  const auto meta = raster_meta(16);
  const pfs::RoundRobinLayout rr(4);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  const Decision before = uncached.decide(meta, rr, features, meta.size_bytes,
                                          /*pipeline=*/1, /*repeats=*/8);
  EXPECT_EQ(before.action, OffloadAction::kServeNormal);
  EXPECT_FALSE(before.target.has_value());

  const DecisionEngine cached(dist_config(), cache_config(1ULL << 30));
  const Decision after = cached.decide(meta, rr, features, meta.size_bytes,
                                       /*pipeline=*/1, /*repeats=*/8);
  EXPECT_EQ(after.action, OffloadAction::kOffload);
}

TEST(CacheDecisionTest, DisabledAndZeroCapacityCachesMatchUncachedExactly) {
  // Every (pipeline, repeats) combination must produce identical decisions,
  // predicted bytes AND rationale text when the cache cannot hold anything.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  cache::CacheConfig disabled;  // enabled == false
  const DecisionEngine with_disabled(dist_config(), disabled);
  cache::CacheConfig zero;
  zero.enabled = true;  // switched on but sized to nothing
  zero.capacity_bytes = 0;
  const DecisionEngine with_zero(dist_config(), zero);

  for (const std::uint32_t pipeline : {1U, 4U}) {
    for (const std::uint32_t repeats : {1U, 16U}) {
      const Decision a = uncached.decide(meta, rr, features, meta.size_bytes,
                                         pipeline, repeats);
      const Decision b = with_disabled.decide(meta, rr, features,
                                              meta.size_bytes, pipeline,
                                              repeats);
      const Decision c = with_zero.decide(meta, rr, features, meta.size_bytes,
                                          pipeline, repeats);
      EXPECT_EQ(a.action, b.action);
      EXPECT_EQ(a.action, c.action);
      EXPECT_EQ(a.predicted_bytes, b.predicted_bytes);
      EXPECT_EQ(a.predicted_bytes, c.predicted_bytes);
      EXPECT_EQ(a.rationale, b.rationale);
      EXPECT_EQ(a.rationale, c.rationale);
      EXPECT_EQ(b.predicted_hit_rate, 0.0);
      EXPECT_EQ(c.predicted_hit_rate, 0.0);
    }
  }
}

TEST(CacheDecisionTest, SingleInvocationIgnoresTheCache) {
  // With repeat_count == 1 there is no steady state to exploit: the cached
  // engine must reproduce the uncached verdict and predicted bytes.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  const DecisionEngine cached(dist_config(), cache_config(1ULL << 30));
  for (const std::uint32_t pipeline : {1U, 4U}) {
    const Decision a =
        uncached.decide(meta, rr, features, meta.size_bytes, pipeline);
    const Decision b =
        cached.decide(meta, rr, features, meta.size_bytes, pipeline);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.predicted_bytes, b.predicted_bytes);
  }
}

TEST(CacheDecisionTest, HitRatePredictionGradesWithCapacity) {
  const auto meta = raster_meta(1024);
  const auto features = kernels::eight_neighbor_pattern("op");
  const auto offsets = features.resolve(meta.raster_width);
  PlacementSpec rr;
  rr.num_servers = 12;
  const TrafficForecast forecast =
      forecast_traffic(meta, offsets, rr, meta.size_bytes);
  ASSERT_GT(forecast.active_strip_fetch_bytes, 0U);

  const std::uint64_t working_set =
      forecast.active_strip_fetch_bytes / rr.num_servers;
  EXPECT_EQ(predicted_cache_hit_rate(forecast, rr, 0), 0.0);
  EXPECT_NEAR(predicted_cache_hit_rate(forecast, rr, working_set / 2), 0.5,
              1e-9);
  EXPECT_EQ(predicted_cache_hit_rate(forecast, rr, working_set * 2), 1.0);

  // Monotone in capacity.
  double last = 0.0;
  for (std::uint64_t cap = 0; cap <= working_set * 2;
       cap += working_set / 4) {
    const double rate = predicted_cache_hit_rate(forecast, rr, cap);
    EXPECT_GE(rate, last);
    last = rate;
  }

  // A replicated layout that already satisfies the halo has nothing to
  // cache.
  PlacementSpec das;
  das.num_servers = 12;
  das.group_size = 16;
  das.halo = 1;
  const TrafficForecast quiet =
      forecast_traffic(meta, offsets, das, meta.size_bytes);
  EXPECT_EQ(quiet.active_strip_fetch_bytes, 0U);
  EXPECT_EQ(predicted_cache_hit_rate(quiet, das, 1ULL << 30), 0.0);
}

}  // namespace
}  // namespace das::core
