// Cache-aware offload decisions: a server-side strip cache big enough to
// hold the steady-state halo working set makes repeated offloading under
// the CURRENT layout cheaper than redistribution (or than normal I/O), so
// the engine flips its verdict — and a disabled or zero-capacity cache
// reproduces the uncached decisions exactly.
#include <gtest/gtest.h>

#include "cache/strip_cache.hpp"
#include "core/decision.hpp"
#include "kernels/features.hpp"

namespace das::core {
namespace {

pfs::FileMeta raster_meta(std::uint64_t strips) {
  pfs::FileMeta m;
  m.name = "f";
  m.strip_size = 64;
  m.element_size = 4;
  m.size_bytes = strips * m.strip_size;
  m.raster_width = 15;  // (W+1)*E == strip: stencil reach = one strip
  m.raster_height = static_cast<std::uint32_t>(strips * 64 /
                                               ((15 + 1) * 4));
  return m;
}

DistributionConfig dist_config() {
  DistributionConfig cfg;
  cfg.group_size = 16;
  cfg.max_capacity_overhead = 0.25;
  return cfg;
}

cache::CacheConfig cache_config(std::uint64_t capacity) {
  cache::CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity_bytes = capacity;
  return cfg;
}

TEST(CacheDecisionTest, LargeCacheFlipsRedistributionToOffloadAsIs) {
  // Uncached, 16 repeats of a stencil on round-robin favour paying the
  // one-time redistribution; with a cache that absorbs every repeat's halo
  // fetches, offloading as-is only pays the first pass and wins.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  const Decision before = uncached.decide(meta, rr, features, meta.size_bytes,
                                          /*pipeline=*/1, /*repeats=*/16);
  EXPECT_EQ(before.action, OffloadAction::kOffloadAfterRedistribution);
  EXPECT_EQ(before.predicted_hit_rate, 0.0);

  const DecisionEngine cached(dist_config(), cache_config(1ULL << 30));
  const Decision after = cached.decide(meta, rr, features, meta.size_bytes,
                                       /*pipeline=*/1, /*repeats=*/16);
  EXPECT_EQ(after.action, OffloadAction::kOffload);
  EXPECT_DOUBLE_EQ(after.predicted_hit_rate, 1.0);
  EXPECT_LT(after.predicted_bytes, before.predicted_bytes);
}

TEST(CacheDecisionTest, LargeCacheFlipsNormalServiceToOffload) {
  // No feasible target placement exists for this small file, so uncached
  // repeats are served as normal I/O; the cache makes repeated offloading
  // under round-robin cheaper than shipping the file every pass.
  const auto meta = raster_meta(16);
  const pfs::RoundRobinLayout rr(4);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  const Decision before = uncached.decide(meta, rr, features, meta.size_bytes,
                                          /*pipeline=*/1, /*repeats=*/8);
  EXPECT_EQ(before.action, OffloadAction::kServeNormal);
  EXPECT_FALSE(before.target.has_value());

  const DecisionEngine cached(dist_config(), cache_config(1ULL << 30));
  const Decision after = cached.decide(meta, rr, features, meta.size_bytes,
                                       /*pipeline=*/1, /*repeats=*/8);
  EXPECT_EQ(after.action, OffloadAction::kOffload);
}

TEST(CacheDecisionTest, DisabledAndZeroCapacityCachesMatchUncachedExactly) {
  // Every (pipeline, repeats) combination must produce identical decisions,
  // predicted bytes AND rationale text when the cache cannot hold anything.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  cache::CacheConfig disabled;  // enabled == false
  const DecisionEngine with_disabled(dist_config(), disabled);
  cache::CacheConfig zero;
  zero.enabled = true;  // switched on but sized to nothing
  zero.capacity_bytes = 0;
  const DecisionEngine with_zero(dist_config(), zero);

  for (const std::uint32_t pipeline : {1U, 4U}) {
    for (const std::uint32_t repeats : {1U, 16U}) {
      const Decision a = uncached.decide(meta, rr, features, meta.size_bytes,
                                         pipeline, repeats);
      const Decision b = with_disabled.decide(meta, rr, features,
                                              meta.size_bytes, pipeline,
                                              repeats);
      const Decision c = with_zero.decide(meta, rr, features, meta.size_bytes,
                                          pipeline, repeats);
      EXPECT_EQ(a.action, b.action);
      EXPECT_EQ(a.action, c.action);
      EXPECT_EQ(a.predicted_bytes, b.predicted_bytes);
      EXPECT_EQ(a.predicted_bytes, c.predicted_bytes);
      EXPECT_EQ(a.rationale, b.rationale);
      EXPECT_EQ(a.rationale, c.rationale);
      EXPECT_EQ(b.predicted_hit_rate, 0.0);
      EXPECT_EQ(c.predicted_hit_rate, 0.0);
    }
  }
}

TEST(CacheDecisionTest, SingleInvocationIgnoresTheCache) {
  // With repeat_count == 1 there is no steady state to exploit: the cached
  // engine must reproduce the uncached verdict and predicted bytes.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");

  const DecisionEngine uncached(dist_config());
  const DecisionEngine cached(dist_config(), cache_config(1ULL << 30));
  for (const std::uint32_t pipeline : {1U, 4U}) {
    const Decision a =
        uncached.decide(meta, rr, features, meta.size_bytes, pipeline);
    const Decision b =
        cached.decide(meta, rr, features, meta.size_bytes, pipeline);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.predicted_bytes, b.predicted_bytes);
  }
}

TEST(CostModelTest, WarmPassBoundaries) {
  // repeats == 1 is exactly one cold pass no matter how good the cache is;
  // h == 0 degenerates to the full uncached pass count; h == 1 leaves only
  // the warmup pass.
  struct Case {
    std::uint32_t repeats;
    double hit_rate;
    double expected;
  };
  const Case kCases[] = {
      {1, 0.0, 1.0}, {1, 0.5, 1.0}, {1, 1.0, 1.0},  {4, 0.0, 4.0},
      {4, 0.5, 2.5}, {4, 1.0, 1.0}, {16, 1.0, 1.0}, {16, 0.25, 12.25},
  };
  for (const Case& c : kCases) {
    EXPECT_DOUBLE_EQ(warm_passes(c.repeats, c.hit_rate), c.expected)
        << "repeats=" << c.repeats << " h=" << c.hit_rate;
  }
}

TEST(CostModelTest, OffloadCostBoundaries) {
  TrafficForecast forecast;
  forecast.active_strip_fetch_bytes = 1000;
  forecast.replica_write_bytes = 100;
  // {pipeline, repeats, hit_rate, overlap, hit_cost_ratio, expected}
  struct Case {
    std::uint32_t pipeline;
    std::uint32_t repeats;
    double hit_rate;
    double overlap;
    double hit_cost_ratio;
    std::uint64_t expected;
  };
  const Case kCases[] = {
      // Uncached identity: pipeline * (fetch + replica) * repeats.
      {1, 1, 0.0, 0.0, 0.0, 1100},
      {1, 4, 0.0, 0.0, 0.0, 4400},
      {2, 1, 0.0, 0.0, 0.0, 2200},
      // Perfect cache without a hit cost: warm passes ride free (PR 1).
      {1, 4, 1.0, 0.0, 0.0, 1400},
      // Perfect cache with an honest hit cost: the three warm passes pay
      // the RAM copy — 1000 * (1 + 3 * 0.05) + 4 * 100.
      {1, 4, 1.0, 0.0, 0.05, 1550},
      // Prefetch overlap discounts the critical-path fetch, never the
      // replica writes: 1000 * 0.5 + 100.
      {1, 1, 0.0, 0.5, 0.0, 600},
      // Both terms together: 1000 * (2.5 * 0.25 + 3 * 0.5 * 0.05) + 400.
      {1, 4, 0.5, 0.75, 0.05, 1100},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(offload_cost(forecast, c.pipeline, c.repeats, c.hit_rate,
                           c.overlap, c.hit_cost_ratio),
              c.expected)
        << "pipeline=" << c.pipeline << " repeats=" << c.repeats
        << " h=" << c.hit_rate << " overlap=" << c.overlap
        << " ratio=" << c.hit_cost_ratio;
  }
}

TEST(CostModelTest, PrefetchOverlapFractionGrowsAndSaturates) {
  EXPECT_DOUBLE_EQ(prefetch_overlap_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(prefetch_overlap_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(prefetch_overlap_fraction(3), 0.75);
  double last = 0.0;
  for (std::uint32_t depth = 0; depth <= 64; ++depth) {
    const double f = prefetch_overlap_fraction(depth);
    EXPECT_GE(f, last);
    EXPECT_LT(f, 1.0);
    last = f;
  }
}

TEST(CacheDecisionTest, PrefetchLowersThePredictedOffloadCost) {
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");
  const cache::CacheConfig cache = cache_config(1ULL << 30);

  pfs::PrefetchConfig prefetch;
  prefetch.enabled = true;
  prefetch.depth = 4;
  const DecisionEngine cached(dist_config(), cache);
  const DecisionEngine prefetching(dist_config(), cache, prefetch);
  const Decision without = cached.decide(meta, rr, features, meta.size_bytes,
                                         /*pipeline=*/1, /*repeats=*/4);
  const Decision with = prefetching.decide(meta, rr, features,
                                           meta.size_bytes,
                                           /*pipeline=*/1, /*repeats=*/4);
  EXPECT_LT(with.predicted_bytes, without.predicted_bytes);
  EXPECT_NE(with.rationale.find("prefetch depth=4"), std::string::npos);
  EXPECT_EQ(without.rationale.find("prefetch"), std::string::npos);

  // An inactive prefetch config must not perturb the cached decision.
  pfs::PrefetchConfig off;
  off.depth = 4;  // enabled stays false
  const DecisionEngine disabled(dist_config(), cache, off);
  const Decision same = disabled.decide(meta, rr, features, meta.size_bytes,
                                        /*pipeline=*/1, /*repeats=*/4);
  EXPECT_EQ(same.predicted_bytes, without.predicted_bytes);
  EXPECT_EQ(same.rationale, without.rationale);
}

TEST(CacheDecisionTest, HitCostPricingKeepsWarmPassesHonest) {
  // With the NIC bandwidth supplied, a perfect hit rate prices warm passes
  // at the RAM-copy cost instead of zero — predicted bytes go up, and the
  // rationale says why.
  const auto meta = raster_meta(1024);
  const pfs::RoundRobinLayout rr(12);
  const auto features = kernels::eight_neighbor_pattern("op");
  const cache::CacheConfig cache = cache_config(1ULL << 30);

  const DecisionEngine free_hits(dist_config(), cache);
  const DecisionEngine priced(dist_config(), cache, {},
                              /*network_bandwidth_bps=*/110.0 * 1024 * 1024);
  const Decision cheap = free_hits.decide(meta, rr, features, meta.size_bytes,
                                          /*pipeline=*/1, /*repeats=*/16);
  const Decision honest = priced.decide(meta, rr, features, meta.size_bytes,
                                        /*pipeline=*/1, /*repeats=*/16);
  EXPECT_GT(honest.predicted_bytes, cheap.predicted_bytes);
  EXPECT_NE(honest.rationale.find("hit-cost="), std::string::npos);
  EXPECT_EQ(cheap.rationale.find("hit-cost="), std::string::npos);
}

TEST(CacheDecisionTest, HitRatePredictionGradesWithCapacity) {
  const auto meta = raster_meta(1024);
  const auto features = kernels::eight_neighbor_pattern("op");
  const auto offsets = features.resolve(meta.raster_width);
  PlacementSpec rr;
  rr.num_servers = 12;
  const TrafficForecast forecast =
      forecast_traffic(meta, offsets, rr, meta.size_bytes);
  ASSERT_GT(forecast.active_strip_fetch_bytes, 0U);

  const std::uint64_t working_set =
      forecast.active_strip_fetch_bytes / rr.num_servers;
  EXPECT_EQ(predicted_cache_hit_rate(forecast, rr, 0), 0.0);
  EXPECT_NEAR(predicted_cache_hit_rate(forecast, rr, working_set / 2), 0.5,
              1e-9);
  EXPECT_EQ(predicted_cache_hit_rate(forecast, rr, working_set * 2), 1.0);

  // Monotone in capacity.
  double last = 0.0;
  for (std::uint64_t cap = 0; cap <= working_set * 2;
       cap += working_set / 4) {
    const double rate = predicted_cache_hit_rate(forecast, rr, cap);
    EXPECT_GE(rate, last);
    last = rate;
  }

  // A replicated layout that already satisfies the halo has nothing to
  // cache.
  PlacementSpec das;
  das.num_servers = 12;
  das.group_size = 16;
  das.halo = 1;
  const TrafficForecast quiet =
      forecast_traffic(meta, offsets, das, meta.size_bytes);
  EXPECT_EQ(quiet.active_strip_fetch_bytes, 0U);
  EXPECT_EQ(predicted_cache_hit_rate(quiet, das, 1ULL << 30), 0.0);
}

}  // namespace
}  // namespace das::core
