// Halo-strip prefetching: the lookahead window hides first-pass remote
// fetch latency without moving a single extra server-to-server byte — a
// demand fetch and a prefetch of the same strip coalesce onto one wire
// transfer, an invalidation mid-flight drops the stale payload, and
// switching prefetch off reproduces the cache-only byte flows exactly.
#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "pfs/pfs.hpp"
#include "pfs/prefetch.hpp"
#include "simkit/simulator.hpp"

namespace das::core {
namespace {

SchemeRunOptions nas_prefetch_options(std::uint32_t depth,
                                      std::uint32_t window = 1) {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 256ULL << 20;  // 256 strips of 1 MiB
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.cluster.pipeline_window = window;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 1ULL << 30;
  o.cluster.prefetch.enabled = depth > 0;
  o.cluster.prefetch.depth = depth;
  return o;
}

TEST(PrefetchIntegrationTest, OffReproducesTheCacheOnlyByteFlowsExactly) {
  // enabled == false (whatever the depth says) must never attach a
  // prefetcher, so timing and traffic match a run that never heard of the
  // prefetch config at all.
  const RunReport baseline = run_scheme(nas_prefetch_options(0));
  SchemeRunOptions disabled = nas_prefetch_options(8);
  disabled.cluster.prefetch.enabled = false;
  const RunReport off = run_scheme(disabled);
  EXPECT_DOUBLE_EQ(baseline.exec_seconds, off.exec_seconds);
  EXPECT_EQ(baseline.server_server_bytes, off.server_server_bytes);
  EXPECT_EQ(baseline.client_server_bytes, off.client_server_bytes);
  EXPECT_EQ(baseline.control_messages, off.control_messages);
  EXPECT_EQ(off.prefetch_issued, 0U);
  EXPECT_EQ(off.prefetch_hits, 0U);
}

TEST(PrefetchIntegrationTest, LookaheadHidesFirstPassLatencyMonotonically) {
  // Same strips cross the wire either way; pulling them ahead of the sweep
  // overlaps fetch with compute, so makespan improves as depth grows.
  const RunReport d0 = run_scheme(nas_prefetch_options(0));
  const RunReport d2 = run_scheme(nas_prefetch_options(2));
  const RunReport d8 = run_scheme(nas_prefetch_options(8));

  EXPECT_EQ(d0.server_server_bytes, d2.server_server_bytes);
  EXPECT_EQ(d0.server_server_bytes, d8.server_server_bytes);
  EXPECT_GE(d0.exec_seconds, d2.exec_seconds);
  EXPECT_GE(d2.exec_seconds, d8.exec_seconds);
  EXPECT_GT(d0.exec_seconds, d8.exec_seconds);

  EXPECT_GT(d8.prefetch_issued, 0U);
  EXPECT_GT(d8.prefetch_issued_bytes, 0U);
}

TEST(PrefetchIntegrationTest, CoalescingNeverDoublesWireTraffic) {
  // Under a deep demand window most prefetches are caught up with by the
  // sweep mid-flight; every one of them must be absorbed, never re-fetched.
  const RunReport off = run_scheme(nas_prefetch_options(0, /*window=*/4));
  const RunReport on = run_scheme(nas_prefetch_options(8, /*window=*/4));
  EXPECT_GT(on.prefetch_coalesced, 0U);
  EXPECT_EQ(on.server_server_bytes, off.server_server_bytes);
  // Every remote strip is either a demand miss or served by prefetch; the
  // two partitions cover the same strip population.
  EXPECT_EQ(on.cache_hits + on.cache_misses, off.cache_hits + off.cache_misses);
}

TEST(PrefetchIntegrationTest, ReductionKernelHasNothingToPrefetch) {
  // raster-statistics has no dependence halo: the plan is empty and the
  // prefetcher changes nothing.
  SchemeRunOptions o = nas_prefetch_options(8);
  o.workload.kernel_name = "raster-statistics";
  const RunReport on = run_scheme(o);
  SchemeRunOptions base = nas_prefetch_options(0);
  base.workload.kernel_name = "raster-statistics";
  const RunReport off = run_scheme(base);
  EXPECT_EQ(on.prefetch_issued, 0U);
  EXPECT_DOUBLE_EQ(on.exec_seconds, off.exec_seconds);
}

TEST(PrefetchIntegrationTest, DataModeStaysBitExactWithPrefetchOn) {
  // Correctness mode: payloads delivered through the prefetcher (admitted
  // strips and coalesced demand waiters alike) must assemble the same
  // output as the sequential reference, across repeated passes whose
  // writes invalidate in-flight fetches.
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "median-3x3";
  o.workload.strip_size = 64;
  o.workload.element_size = 4;
  o.workload.data_bytes = 128 * 64;
  o.workload.with_data = true;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.cluster.pipeline_window = 1;
  o.repeat_count = 3;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 1ULL << 20;
  o.cluster.prefetch.enabled = true;
  o.cluster.prefetch.depth = 4;
  const RunReport report = run_scheme(o);
  EXPECT_TRUE(report.output_verified)
      << "max error " << report.output_max_error;
}

/// Direct prefetcher harness: a 4-server Pfs with caches and prefetchers,
/// one round-robin file, and hand-driven plans.
class PrefetcherFixture : public ::testing::Test {
 protected:
  PrefetcherFixture() {
    net::NetworkConfig ncfg;
    ncfg.num_nodes = 4;
    ncfg.nic_bandwidth_bps = 1024.0 * 1024;  // 1 KiB strip ~ 1 ms on the wire
    ncfg.wire_latency = sim::microseconds(10);
    network_ = std::make_unique<net::Network>(sim_, ncfg);
    pfs_ = std::make_unique<pfs::Pfs>(sim_, *network_,
                                      std::vector<net::NodeId>{0, 1, 2, 3},
                                      storage::DiskConfig{});
    cache::CacheConfig ccfg;
    ccfg.enabled = true;
    ccfg.capacity_bytes = 1ULL << 20;
    pfs_->enable_strip_caches(ccfg);
    pfs::PrefetchConfig pcfg;
    pcfg.enabled = true;
    pcfg.depth = 4;
    pfs_->enable_prefetch(pcfg);

    pfs::FileMeta meta;
    meta.name = "halo";
    meta.size_bytes = 16 * 1024;
    meta.strip_size = 1024;
    file_ = pfs_->create_file(meta,
                              std::make_unique<pfs::RoundRobinLayout>(4));
  }

  /// Strip 1 lives on server 1 (round-robin over 4 servers); server 0
  /// prefetching it crosses the wire.
  pfs::PrefetchItem remote_strip(std::uint64_t strip) {
    return pfs::PrefetchItem{file_, strip, 1024,
                             pfs_->layout(file_).primary(strip)};
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<pfs::Pfs> pfs_;
  pfs::FileId file_ = pfs::kInvalidFile;
};

TEST_F(PrefetcherFixture, PrefetchLandsInTheCacheAsAPrefetchInsertion) {
  pfs::HaloPrefetcher* p = pfs_->server(0).prefetcher();
  ASSERT_NE(p, nullptr);
  p->enqueue({remote_strip(1)});
  EXPECT_TRUE(p->in_flight(cache::CacheKey{file_, 1}));
  sim_.run();

  EXPECT_EQ(p->stats().issued, 1U);
  EXPECT_EQ(p->stats().issued_bytes, 1024U);
  EXPECT_EQ(p->stats().dropped_stale, 0U);
  const cache::StripCache* cache = pfs_->server(0).strip_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->contains(cache::CacheKey{file_, 1}));
  EXPECT_EQ(cache->stats().prefetch_insertions, 1U);
  EXPECT_EQ(cache->stats().insertions, 0U);
}

TEST_F(PrefetcherFixture, DemandCoalescesOntoAnInFlightPrefetch) {
  pfs::HaloPrefetcher* p = pfs_->server(0).prefetcher();
  p->enqueue({remote_strip(1)});

  bool delivered = false;
  const bool issued = p->demand_fetch(
      remote_strip(1),
      [&delivered](const pfs::StripBuffer&) { delivered = true; });
  EXPECT_FALSE(issued);  // absorbed, not a second wire transfer
  EXPECT_EQ(p->stats().coalesced, 1U);
  EXPECT_EQ(p->stats().coalesced_bytes, 1024U);

  sim_.run();
  EXPECT_TRUE(delivered);
  // A prefetch the sweep consumed mid-flight is demand traffic: it lands as
  // an ordinary insert, and only one transfer ever crossed the wire.
  const cache::StripCache* cache = pfs_->server(0).strip_cache();
  EXPECT_EQ(cache->stats().insertions, 1U);
  EXPECT_EQ(cache->stats().prefetch_insertions, 0U);
  EXPECT_EQ(p->stats().issued, 1U);
}

TEST_F(PrefetcherFixture, MidFlightInvalidationDropsTheStalePayload) {
  pfs::HaloPrefetcher* p = pfs_->server(0).prefetcher();
  p->enqueue({remote_strip(1)});

  // A write to the strip lands on its holder well before the ~1 ms
  // transfer completes; the invalidation hub marks the in-flight fetch.
  sim_.schedule_at(sim::microseconds(50),
                   [this]() {
                     const pfs::StripRef ref = pfs_->meta(file_).strip(1);
                     pfs_->server(1).write_local(file_, ref, {});
                   },
                   "test.write");
  sim_.run();

  EXPECT_EQ(p->stats().issued, 1U);
  EXPECT_EQ(p->stats().dropped_stale, 1U);
  const cache::StripCache* cache = pfs_->server(0).strip_cache();
  EXPECT_FALSE(cache->contains(cache::CacheKey{file_, 1}));
  EXPECT_EQ(cache->stats().prefetch_insertions, 0U);
}

TEST_F(PrefetcherFixture, PlanSkipsLocalCachedAndInFlightStrips) {
  pfs::HaloPrefetcher* p = pfs_->server(0).prefetcher();
  // Strip 0 is server 0's own; strip 1 goes in flight on the first enqueue,
  // so re-planning it (plus the local strip) only skips.
  p->enqueue({remote_strip(1)});
  p->enqueue({pfs::PrefetchItem{file_, 0, 1024, 0}, remote_strip(1)});
  EXPECT_EQ(p->stats().skipped, 2U);
  EXPECT_EQ(p->stats().issued, 1U);
  sim_.run();
  // Once cached, planning it again is also a skip, not a refetch.
  p->enqueue({remote_strip(1)});
  sim_.run();
  EXPECT_EQ(p->stats().skipped, 3U);
  EXPECT_EQ(p->stats().issued, 1U);
}

TEST_F(PrefetcherFixture, DepthBoundsTheLookaheadWindow) {
  pfs::HaloPrefetcher* p = pfs_->server(0).prefetcher();
  // 12 remote strips, depth 4: the queue drains in waves of four.
  std::vector<pfs::PrefetchItem> plan;
  for (std::uint64_t s = 0; s < 16; ++s) {
    if (pfs_->layout(file_).primary(s) != 0) plan.push_back(remote_strip(s));
  }
  ASSERT_EQ(plan.size(), 12U);
  p->enqueue(std::move(plan));
  EXPECT_EQ(p->stats().issued, 4U);
  EXPECT_EQ(p->queued(), 8U);
  sim_.run();
  EXPECT_EQ(p->stats().issued, 12U);
  EXPECT_EQ(p->queued(), 0U);
  EXPECT_EQ(pfs_->cache_stats().prefetch_insertions, 12U);
}

}  // namespace
}  // namespace das::core
