// Successive-operation pipelines (paper §I: "the flow-accumulation
// operation always follows the flow-routing operation").
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions base_options(Scheme scheme) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = "flow-routing";
  o.workload.strip_size = 64;
  o.workload.element_size = 4;
  o.workload.data_bytes = 128 * 64;
  o.workload.with_data = true;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.distribution.group_size = 16;
  o.distribution.max_capacity_overhead = 1.0;
  return o;
}

const std::vector<std::string> kTerrainChain{"flow-routing",
                                             "flow-accumulation"};

TEST(PipelineTest, ReturnsOneReportPerStagePlusCombined) {
  const auto reports = run_pipeline(base_options(Scheme::kDAS), kTerrainChain);
  ASSERT_EQ(reports.size(), 3U);
  EXPECT_EQ(reports[0].kernel, "flow-routing");
  EXPECT_EQ(reports[1].kernel, "flow-accumulation");
  EXPECT_EQ(reports[2].kernel, "pipeline");
}

TEST(PipelineTest, CombinedTimeCoversTheStages) {
  const auto reports = run_pipeline(base_options(Scheme::kTS), kTerrainChain);
  EXPECT_GE(reports[2].exec_seconds + 1e-9,
            reports[0].exec_seconds + reports[1].exec_seconds);
}

TEST(PipelineTest, FirstStageOutputFeedsTheSecondStage) {
  // The routing stage is tile-exact and verifiable; the accumulation stage
  // runs on its output (verification skipped: not tile-exact).
  const auto reports = run_pipeline(base_options(Scheme::kDAS), kTerrainChain);
  EXPECT_TRUE(reports[0].output_verified);
  EXPECT_FALSE(reports[1].output_verified);
}

TEST(PipelineTest, DasStagesAfterTheFirstNeedNoRedistribution) {
  SchemeRunOptions o = base_options(Scheme::kDAS);
  o.pre_distributed = false;
  const auto reports = run_pipeline(o, kTerrainChain);
  // The first stage pays the redistribution; the second inherits the layout.
  EXPECT_TRUE(reports[0].redistributed);
  EXPECT_FALSE(reports[1].redistributed);
  EXPECT_EQ(reports[1].redistribution_bytes, 0U);
  EXPECT_TRUE(reports[1].offloaded);
}

TEST(PipelineTest, TsPipelineKeepsServersPassive) {
  const auto reports = run_pipeline(base_options(Scheme::kTS), kTerrainChain);
  for (const auto& r : reports) {
    EXPECT_EQ(r.server_server_bytes, 0U);
    EXPECT_FALSE(r.offloaded);
  }
}

TEST(PipelineTest, DasPipelineBeatsTsPipelineAtPaperScale) {
  SchemeRunOptions das = base_options(Scheme::kDAS);
  das.workload.with_data = false;
  das.workload.data_bytes = 1ULL << 30;
  das.workload.strip_size = 1ULL << 20;
  das.workload.raster_width =
      static_cast<std::uint32_t>(das.workload.strip_size / 4) - 1;
  das.distribution.group_size = 16;
  das.distribution.max_capacity_overhead = 0.25;
  SchemeRunOptions ts = das;
  ts.scheme = Scheme::kTS;

  const auto das_reports = run_pipeline(das, kTerrainChain);
  const auto ts_reports = run_pipeline(ts, kTerrainChain);
  EXPECT_LT(das_reports.back().exec_seconds,
            ts_reports.back().exec_seconds);
}

TEST(PipelineTest, ChainOfThreeFiltersVerifiesEveryStage) {
  SchemeRunOptions o = base_options(Scheme::kDAS);
  o.workload.kernel_name = "gaussian-2d";
  const std::vector<std::string> chain{"gaussian-2d", "median-3x3",
                                       "gaussian-2d"};
  const auto reports = run_pipeline(o, chain);
  ASSERT_EQ(reports.size(), 4U);
  EXPECT_TRUE(reports[0].output_verified);
  EXPECT_TRUE(reports[1].output_verified);
  EXPECT_TRUE(reports[2].output_verified);
}

TEST(PipelineDeathTest, EmptyChainAborts) {
  EXPECT_DEATH(run_pipeline(base_options(Scheme::kTS), {}), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::core
