// Successive-operation pipelines (paper §I: "the flow-accumulation
// operation always follows the flow-routing operation").
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions base_options(Scheme scheme) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = "flow-routing";
  o.workload.strip_size = 64;
  o.workload.element_size = 4;
  o.workload.data_bytes = 128 * 64;
  o.workload.with_data = true;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.distribution.group_size = 16;
  o.distribution.max_capacity_overhead = 1.0;
  return o;
}

const std::vector<std::string> kTerrainChain{"flow-routing",
                                             "flow-accumulation"};

TEST(PipelineTest, ReturnsOneReportPerStagePlusCombined) {
  const auto reports = run_pipeline(base_options(Scheme::kDAS), kTerrainChain);
  ASSERT_EQ(reports.size(), 3U);
  EXPECT_EQ(reports[0].kernel, "flow-routing");
  EXPECT_EQ(reports[1].kernel, "flow-accumulation");
  EXPECT_EQ(reports[2].kernel, "pipeline");
}

TEST(PipelineTest, CombinedTimeCoversTheStages) {
  const auto reports = run_pipeline(base_options(Scheme::kTS), kTerrainChain);
  EXPECT_GE(reports[2].exec_seconds + 1e-9,
            reports[0].exec_seconds + reports[1].exec_seconds);
}

TEST(PipelineTest, FirstStageOutputFeedsTheSecondStage) {
  // The routing stage is tile-exact and verifiable; the accumulation stage
  // runs on its output (verification skipped: not tile-exact).
  const auto reports = run_pipeline(base_options(Scheme::kDAS), kTerrainChain);
  EXPECT_TRUE(reports[0].output_verified);
  EXPECT_FALSE(reports[1].output_verified);
}

TEST(PipelineTest, DasStagesAfterTheFirstNeedNoRedistribution) {
  SchemeRunOptions o = base_options(Scheme::kDAS);
  o.pre_distributed = false;
  const auto reports = run_pipeline(o, kTerrainChain);
  // The first stage pays the redistribution; the second inherits the layout.
  EXPECT_TRUE(reports[0].redistributed);
  EXPECT_FALSE(reports[1].redistributed);
  EXPECT_EQ(reports[1].redistribution_bytes, 0U);
  EXPECT_TRUE(reports[1].offloaded);
}

TEST(PipelineTest, TsPipelineKeepsServersPassive) {
  const auto reports = run_pipeline(base_options(Scheme::kTS), kTerrainChain);
  for (const auto& r : reports) {
    EXPECT_EQ(r.server_server_bytes, 0U);
    EXPECT_FALSE(r.offloaded);
  }
}

TEST(PipelineTest, DasPipelineBeatsTsPipelineAtPaperScale) {
  SchemeRunOptions das = base_options(Scheme::kDAS);
  das.workload.with_data = false;
  das.workload.data_bytes = 1ULL << 30;
  das.workload.strip_size = 1ULL << 20;
  das.workload.raster_width =
      static_cast<std::uint32_t>(das.workload.strip_size / 4) - 1;
  das.distribution.group_size = 16;
  das.distribution.max_capacity_overhead = 0.25;
  SchemeRunOptions ts = das;
  ts.scheme = Scheme::kTS;

  const auto das_reports = run_pipeline(das, kTerrainChain);
  const auto ts_reports = run_pipeline(ts, kTerrainChain);
  EXPECT_LT(das_reports.back().exec_seconds,
            ts_reports.back().exec_seconds);
}

TEST(PipelineTest, ChainOfThreeFiltersVerifiesEveryStage) {
  SchemeRunOptions o = base_options(Scheme::kDAS);
  o.workload.kernel_name = "gaussian-2d";
  const std::vector<std::string> chain{"gaussian-2d", "median-3x3",
                                       "gaussian-2d"};
  const auto reports = run_pipeline(o, chain);
  ASSERT_EQ(reports.size(), 4U);
  EXPECT_TRUE(reports[0].output_verified);
  EXPECT_TRUE(reports[1].output_verified);
  EXPECT_TRUE(reports[2].output_verified);
}

TEST(PipelineTest, StageReportsCarryPerStageCacheDeltas) {
  // NAS pipeline on round-robin with caching: every stage fetches remote
  // halo, so every stage report must show its OWN misses — snapshot deltas,
  // not the cumulative hub counters — and the deltas sum to the combined
  // report's totals.
  SchemeRunOptions o = base_options(Scheme::kNAS);
  o.workload.with_data = false;
  o.workload.data_bytes = 64ULL << 20;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 1ULL << 30;
  o.cluster.prefetch.enabled = true;
  o.cluster.prefetch.depth = 4;
  o.cluster.pipeline_window = 1;
  const std::vector<std::string> chain{"gaussian-2d", "median-3x3",
                                       "gaussian-2d"};
  const auto reports = run_pipeline(o, chain);
  ASSERT_EQ(reports.size(), 4U);

  std::uint64_t miss_sum = 0, issued_sum = 0;
  for (std::size_t stage = 0; stage < 3; ++stage) {
    EXPECT_GT(reports[stage].cache_misses, 0U) << "stage " << stage;
    miss_sum += reports[stage].cache_misses;
    issued_sum += reports[stage].prefetch_issued;
  }
  // Each stage reads a different file, so no stage can recycle another's
  // strips: per-stage deltas partition the combined totals exactly.
  EXPECT_EQ(miss_sum, reports[3].cache_misses);
  EXPECT_EQ(issued_sum, reports[3].prefetch_issued);
  EXPECT_GT(issued_sum, 0U);
}

TEST(PipelineDeathTest, EmptyChainAborts) {
  EXPECT_DEATH(run_pipeline(base_options(Scheme::kTS), {}), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::core
