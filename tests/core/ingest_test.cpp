#include "core/ingest.hpp"

#include <gtest/gtest.h>

#include "core/as_client.hpp"
#include "core/workload.hpp"
#include "grid/dem.hpp"
#include "grid/serialize.hpp"

namespace das::core {
namespace {

class IngestFixture : public ::testing::Test {
 protected:
  IngestFixture() {
    config_.storage_nodes = 4;
    config_.compute_nodes = 4;
    cluster_ = std::make_unique<Cluster>(config_);
    ingestor_ = std::make_unique<Ingestor>(*cluster_);
  }

  pfs::FileMeta raster_meta(std::uint64_t strips) const {
    pfs::FileMeta meta;
    meta.name = "dataset";
    meta.size_bytes = strips * 64;
    meta.strip_size = 64;
    meta.element_size = 4;
    meta.raster_width = 16;
    meta.raster_height = static_cast<std::uint32_t>(strips);
    return meta;
  }

  ClusterConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Ingestor> ingestor_;
};

TEST_F(IngestFixture, TimingOnlyIngestCompletes) {
  bool done = false;
  const pfs::FileId file = ingestor_->ingest(
      raster_meta(128), std::make_unique<pfs::RoundRobinLayout>(4), nullptr,
      [&] { done = true; });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster_->pfs().meta(file).size_bytes, 128U * 64);
  EXPECT_EQ(ingestor_->bytes_ingested(), 128U * 64);
}

TEST_F(IngestFixture, DataIngestIsGatherable) {
  grid::DemOptions opt;
  opt.width = 16;
  opt.height = 128;
  const auto dem = grid::generate_dem(opt);
  const auto bytes = grid::to_bytes(dem);

  const pfs::FileId file = ingestor_->ingest(
      raster_meta(128), std::make_unique<pfs::RoundRobinLayout>(4), &bytes,
      nullptr);
  cluster_->simulator().run();
  EXPECT_EQ(cluster_->pfs().gather_bytes(file), bytes);
}

TEST_F(IngestFixture, ReplicatedLayoutPopulatesEveryHolder) {
  grid::DemOptions opt;
  opt.width = 16;
  opt.height = 128;
  const auto bytes = grid::to_bytes(grid::generate_dem(opt));
  const pfs::FileId file = ingestor_->ingest(
      raster_meta(128), std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2),
      &bytes, nullptr);
  cluster_->simulator().run();

  const pfs::Layout& layout = cluster_->pfs().layout(file);
  for (std::uint64_t s = 0; s < 128; ++s) {
    for (const pfs::ServerIndex holder : layout.holders(s, 128)) {
      EXPECT_FALSE(
          cluster_->pfs().server(holder).store().bytes(file, s).empty());
    }
  }
}

TEST_F(IngestFixture, NetworkCarriesTheWholeFilePlusReplicas) {
  const pfs::FileId file = ingestor_->ingest(
      raster_meta(128), std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2),
      nullptr, nullptr);
  cluster_->simulator().run();
  (void)file;
  // 128 strips + the replicated halo copies (write_range hits all holders).
  const auto moved =
      cluster_->network().bytes_delivered(net::TrafficClass::kClientServer);
  EXPECT_GT(moved, 128U * 64);
  EXPECT_LT(moved, 2U * 128 * 64);
}

TEST_F(IngestFixture, DasIngestMovesOnlyTheReplicaFractionExtra) {
  // The A6 story: establishing the dependence-aware layout at load time
  // only adds the replica fraction of traffic (2*halo/r). Time is not
  // asserted here — at tiny strip sizes the grouped layout actually
  // ingests *faster* (sequential disk writes, fewer seeks); the
  // paper-scale timing comparison lives in bench_ablation_ingest.
  sim::SimTime rr_done = -1;
  ingestor_->ingest(raster_meta(512),
                    std::make_unique<pfs::RoundRobinLayout>(4), nullptr,
                    [&] { rr_done = cluster_->simulator().now(); });
  cluster_->simulator().run();
  const auto rr_bytes = cluster_->network().bytes_delivered(
      net::TrafficClass::kClientServer);

  Cluster other(config_);
  Ingestor das_ingest(other);
  sim::SimTime das_done = -1;
  das_ingest.ingest(raster_meta(512),
                    std::make_unique<pfs::DasReplicatedLayout>(4, 16, 1),
                    nullptr, [&] { das_done = other.simulator().now(); });
  other.simulator().run();
  const auto das_bytes =
      other.network().bytes_delivered(net::TrafficClass::kClientServer);

  ASSERT_GT(rr_done, 0);
  ASSERT_GT(das_done, 0);
  EXPECT_EQ(rr_bytes, 512U * 64);
  // Replicated copies: 2*halo/r = 12.5% more, minus the file-edge groups.
  EXPECT_GT(das_bytes, rr_bytes);
  EXPECT_LE(das_bytes, rr_bytes + rr_bytes / 8);
  EXPECT_LT(sim::to_seconds(das_done), 2.0 * sim::to_seconds(rr_done));
}

TEST_F(IngestFixture, IngestedFileRunsTheFullPipeline) {
  grid::DemOptions opt;
  opt.width = 16;
  opt.height = 128;
  const auto bytes = grid::to_bytes(grid::generate_dem(opt));
  const pfs::FileId file = ingestor_->ingest(
      raster_meta(128), std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2),
      &bytes, nullptr);
  cluster_->simulator().run();

  // Offload a kernel over the freshly ingested file through the public API.
  const kernels::KernelRegistry registry = kernels::standard_registry();
  DistributionConfig distribution;
  distribution.group_size = 8;
  distribution.max_capacity_overhead = 1.0;
  ActiveStorageClient client(*cluster_, registry, distribution);
  ActiveRequest request;
  request.input = file;
  request.kernel_name = "gaussian-2d";
  request.data_mode = true;
  bool done = false;
  const SubmissionResult result = client.submit(request, [&] { done = true; });
  cluster_->simulator().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.offloaded);

  const auto produced = grid::from_bytes(
      cluster_->pfs().gather_bytes(result.output), 16, 128);
  const auto reference = registry.create("gaussian-2d")
                             ->run_reference(grid::from_bytes(bytes, 16, 128));
  EXPECT_EQ(produced, reference);
}

}  // namespace
}  // namespace das::core
