// Bounded-prefetch (pipeline window) behavior of the executors: deeper
// windows overlap more work; a window of one serializes each run end to
// end. The byte counts must be identical either way.
#include <gtest/gtest.h>

#include "core/active_executor.hpp"
#include "core/scheme.hpp"
#include "core/ts_executor.hpp"
#include "core/workload.hpp"
#include "kernels/registry.hpp"

namespace das::core {
namespace {

struct RunOutcome {
  sim::SimTime finish = -1;
  std::uint64_t client_server = 0;
  std::uint64_t server_server = 0;
};

RunOutcome run_with_window(Scheme scheme, std::uint32_t window) {
  ClusterConfig config;
  config.storage_nodes = 4;
  config.compute_nodes = 4;
  config.job_startup = 0;
  config.pipeline_window = window;
  Cluster cluster(config);
  const auto registry = kernels::standard_registry();
  const auto kernel = registry.create("flow-routing");

  WorkloadSpec spec;
  spec.strip_size = 1ULL << 20;
  spec.element_size = 4;
  spec.raster_width = static_cast<std::uint32_t>(spec.strip_size / 4) - 1;
  spec.data_bytes = 256ULL << 20;
  pfs::FileMeta meta = spec.make_meta("input");

  std::unique_ptr<pfs::Layout> layout;
  if (scheme == Scheme::kDAS) {
    layout = std::make_unique<pfs::DasReplicatedLayout>(4, 16, 1);
  } else {
    layout = std::make_unique<pfs::RoundRobinLayout>(4);
  }
  const auto input = cluster.pfs().create_file(meta, layout->clone(),
                                               nullptr);
  meta.name = "output";
  const auto output =
      cluster.pfs().create_file(meta, std::move(layout), nullptr);

  RunOutcome outcome;
  auto on_done = [&] { outcome.finish = cluster.simulator().now(); };
  std::unique_ptr<TsExecutor> ts;
  std::unique_ptr<ActiveExecutor> active;
  if (scheme == Scheme::kTS) {
    ts = std::make_unique<TsExecutor>(
        cluster, TsExecutor::Options{kernel.get(), 1, false});
    ts->start(input, output, on_done);
  } else {
    active = std::make_unique<ActiveExecutor>(
        cluster, ActiveExecutor::Options{kernel.get(), 1, false});
    active->start(input, output, on_done);
  }
  cluster.simulator().run();
  outcome.client_server =
      cluster.network().bytes_delivered(net::TrafficClass::kClientServer);
  outcome.server_server =
      cluster.network().bytes_delivered(net::TrafficClass::kServerServer);
  return outcome;
}

class WindowTest
    : public ::testing::TestWithParam<std::tuple<Scheme, std::uint32_t>> {};

TEST_P(WindowTest, EveryWindowCompletesWithTheSameTraffic) {
  const auto& [scheme, window] = GetParam();
  const RunOutcome base = run_with_window(scheme, 4);
  const RunOutcome probe = run_with_window(scheme, window);
  ASSERT_GE(probe.finish, 0);
  EXPECT_EQ(probe.client_server, base.client_server);
  EXPECT_EQ(probe.server_server, base.server_server);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndWindows, WindowTest,
    ::testing::Combine(::testing::Values(Scheme::kTS, Scheme::kNAS,
                                         Scheme::kDAS),
                       ::testing::Values(1U, 2U, 8U, 32U)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(WindowDepthTest, DeeperWindowsOverlapMoreWork) {
  for (const Scheme scheme : {Scheme::kTS, Scheme::kNAS}) {
    const auto serial = run_with_window(scheme, 1);
    const auto pipelined = run_with_window(scheme, 8);
    EXPECT_LT(pipelined.finish, serial.finish) << to_string(scheme);
  }
}

TEST(WindowDepthTest, WindowDoesNotChangeWhoWins) {
  for (const std::uint32_t window : {1U, 8U}) {
    const auto ts = run_with_window(Scheme::kTS, window);
    const auto nas = run_with_window(Scheme::kNAS, window);
    const auto das = run_with_window(Scheme::kDAS, window);
    EXPECT_LT(das.finish, ts.finish) << "window " << window;
    EXPECT_LT(ts.finish, nas.finish) << "window " << window;
  }
}

}  // namespace
}  // namespace das::core
