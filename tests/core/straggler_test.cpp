// Straggler injection: slow storage nodes and their effect per scheme.
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions options_with_stragglers(Scheme scheme, std::uint32_t count,
                                         double slowdown) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 2ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.cluster.straggler_count = count;
  o.cluster.straggler_slowdown = slowdown;
  return o;
}

TEST(StragglerTest, NoStragglersIsTheBaseline) {
  const RunReport a = run_scheme(options_with_stragglers(Scheme::kDAS, 0, 1.0));
  const RunReport b = run_scheme(options_with_stragglers(Scheme::kDAS, 0, 8.0));
  EXPECT_DOUBLE_EQ(a.exec_seconds, b.exec_seconds);
}

TEST(StragglerTest, SlowServerDelaysEveryScheme) {
  for (const Scheme s : {Scheme::kTS, Scheme::kNAS, Scheme::kDAS}) {
    const RunReport clean =
        run_scheme(options_with_stragglers(s, 0, 1.0));
    const RunReport degraded =
        run_scheme(options_with_stragglers(s, 1, 4.0));
    EXPECT_GT(degraded.exec_seconds, clean.exec_seconds) << to_string(s);
  }
}

TEST(StragglerTest, MoreSlowdownIsMonotonicallyWorse) {
  double previous = 0.0;
  for (const double slowdown : {1.0, 2.0, 4.0, 8.0}) {
    const RunReport r =
        run_scheme(options_with_stragglers(Scheme::kDAS, 1, slowdown));
    EXPECT_GE(r.exec_seconds, previous);
    previous = r.exec_seconds;
  }
}

TEST(StragglerTest, ActiveStorageIsMoreExposedThanTs) {
  // DAS binds each slab's compute and I/O to its home server, so one slow
  // server gates the whole run; TS's bottleneck is the client links, which
  // a slow server disk barely dents.
  const auto relative_hit = [](Scheme s) {
    const double clean =
        run_scheme(options_with_stragglers(s, 1, 1.0)).exec_seconds;
    const double degraded =
        run_scheme(options_with_stragglers(s, 1, 6.0)).exec_seconds;
    return degraded / clean;
  };
  EXPECT_GT(relative_hit(Scheme::kDAS), relative_hit(Scheme::kTS));
}

TEST(StragglerTest, UtilizationReflectsTheScheme) {
  const RunReport das =
      run_scheme(options_with_stragglers(Scheme::kDAS, 0, 1.0));
  const RunReport ts =
      run_scheme(options_with_stragglers(Scheme::kTS, 0, 1.0));
  // Offloading computes on the servers; TS computes on the clients.
  EXPECT_GT(das.server_compute_utilization, 0.0);
  EXPECT_DOUBLE_EQ(das.client_compute_utilization, 0.0);
  EXPECT_DOUBLE_EQ(ts.server_compute_utilization, 0.0);
  EXPECT_GT(ts.client_compute_utilization, 0.0);
  // TS saturates the network; DAS works from local disks.
  EXPECT_GT(ts.server_nic_utilization, das.server_nic_utilization);
  EXPECT_GT(das.server_disk_utilization, 0.0);
}

TEST(StragglerDeathTest, InvalidConfigAborts) {
  SchemeRunOptions o = options_with_stragglers(Scheme::kTS, 5, 2.0);
  EXPECT_DEATH(run_scheme(o), "DAS_REQUIRE");  // more stragglers than servers
  SchemeRunOptions o2 = options_with_stragglers(Scheme::kTS, 1, 0.5);
  EXPECT_DEATH(run_scheme(o2), "DAS_REQUIRE");  // speedup, not slowdown
}

}  // namespace
}  // namespace das::core
