// End-to-end online migration through run_scheme: the NAS repeated-pass
// path observes per-pass halo traffic, launches the background migration,
// and later passes run cheaper — with outputs bit-identical throughout.
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions phase_change_options(bool with_data) {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "flow-routing";
  o.workload.strip_size = 64;
  o.workload.element_size = 4;
  o.workload.data_bytes = 256 * 64;
  o.workload.with_data = with_data;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.repeat_count = 6;
  return o;
}

MigrationConfig small_file_migration() {
  MigrationConfig config;
  config.enabled = true;
  config.min_observed_bytes = 1;  // the test raster is tiny
  config.hysteresis_passes = 2;
  return config;
}

TEST(MigrationIntegrationTest, MigrationFiresAndCutsHaloTraffic) {
  const RunReport off = run_scheme(phase_change_options(false));
  EXPECT_EQ(off.migrations, 0U);
  EXPECT_EQ(off.migration_bytes, 0U);

  SchemeRunOptions on = phase_change_options(false);
  on.migration = small_file_migration();
  const RunReport migrated = run_scheme(on);
  EXPECT_EQ(migrated.migrations, 1U);
  EXPECT_GT(migrated.migration_bytes, 0U);
  // Post-migration passes run at grouped-layout halo cost: total srv-srv
  // bytes net of the one-time move must undercut the unmigrated run.
  EXPECT_LT(migrated.server_server_bytes - migrated.migration_bytes,
            off.server_server_bytes);
  EXPECT_LT(migrated.exec_seconds, off.exec_seconds);
}

TEST(MigrationIntegrationTest, OutputsStayBitExactAcrossTheMigration) {
  SchemeRunOptions on = phase_change_options(true);
  on.migration = small_file_migration();
  on.migration.strips_per_round = 1;  // stretch the migration across passes
  on.repeat_count = 3;  // hysteresis 2: launch lands as the last pass starts
  const RunReport report = run_scheme(on);
  EXPECT_EQ(report.migrations, 1U);
  EXPECT_TRUE(report.output_verified)
      << "max error " << report.output_max_error;
}

TEST(MigrationIntegrationTest, DisabledConfigChangesNothing) {
  const RunReport baseline = run_scheme(phase_change_options(false));

  SchemeRunOptions off = phase_change_options(false);
  off.migration.enabled = false;
  off.migration.divergence_threshold = 0.1;  // would fire if enabled
  off.migration.min_observed_bytes = 1;
  const RunReport report = run_scheme(off);
  EXPECT_EQ(report.migrations, 0U);
  EXPECT_EQ(report.exec_seconds, baseline.exec_seconds);
  EXPECT_EQ(report.server_server_bytes, baseline.server_server_bytes);
  EXPECT_EQ(report.control_messages, baseline.control_messages);
}

TEST(MigrationIntegrationTest, SinglePassNeverMigrates) {
  // remaining_passes is zero after the only pass: nothing left to pay for
  // the move, so the planner must stay quiet.
  SchemeRunOptions o = phase_change_options(false);
  o.repeat_count = 1;
  o.migration = small_file_migration();
  o.migration.hysteresis_passes = 1;
  const RunReport report = run_scheme(o);
  EXPECT_EQ(report.migrations, 0U);
}

TEST(MigrationIntegrationTest, MigrationWorksWithServerCachesOn) {
  // Cache epoch tagging: entries inserted before the migration are dropped
  // lazily once the epoch advances; the run must stay bit-exact.
  SchemeRunOptions on = phase_change_options(true);
  on.migration = small_file_migration();
  on.cluster.server_cache.enabled = true;
  on.cluster.server_cache.capacity_bytes = 1ULL << 20;
  const RunReport report = run_scheme(on);
  EXPECT_EQ(report.migrations, 1U);
  EXPECT_TRUE(report.output_verified)
      << "max error " << report.output_max_error;
}

}  // namespace
}  // namespace das::core
