#include "core/workload.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "kernels/registry.hpp"

namespace das::core {
namespace {

TEST(WorkloadTest, DefaultWidthIsOneStripOfElements) {
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.data_bytes = 64 * 1024;
  EXPECT_EQ(spec.width(), 256U);
  EXPECT_EQ(spec.height(), 64U);
}

TEST(WorkloadTest, ExplicitWidthOverrides) {
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.raster_width = 128;
  spec.data_bytes = 64 * 1024;
  EXPECT_EQ(spec.width(), 128U);
  EXPECT_EQ(spec.height(), 128U);
}

TEST(WorkloadTest, GeometryAlignment) {
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.data_bytes = 64 * 1024;
  EXPECT_TRUE(spec.geometry_aligned());  // row bytes == strip size

  spec.raster_width = 512;  // two strips per row
  EXPECT_TRUE(spec.geometry_aligned());

  spec.raster_width = 128;  // two rows per strip
  EXPECT_TRUE(spec.geometry_aligned());

  spec.raster_width = 300;  // 1200 B rows vs 1024 B strips: misaligned
  EXPECT_FALSE(spec.geometry_aligned());
}

TEST(WorkloadTest, MakeMetaCarriesRasterGeometry) {
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.data_bytes = 64 * 1024;
  const pfs::FileMeta meta = spec.make_meta("terrain");
  EXPECT_EQ(meta.name, "terrain");
  EXPECT_EQ(meta.size_bytes, 64U * 1024);
  EXPECT_EQ(meta.strip_size, 1024U);
  EXPECT_EQ(meta.raster_width, 256U);
  EXPECT_EQ(meta.raster_height, 64U);
  EXPECT_EQ(meta.num_strips(), 64U);
}

TEST(WorkloadTest, InputKindsMatchTheKernels) {
  const auto registry = kernels::standard_registry();
  WorkloadSpec spec;
  spec.strip_size = 64;
  spec.element_size = 4;
  spec.data_bytes = 64 * 64;
  spec.with_data = true;

  // Flow-accumulation input must be a valid D8 direction raster.
  spec.kernel_name = "flow-accumulation";
  const auto dirs =
      make_input(spec, *registry.create("flow-accumulation"));
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    const auto code = static_cast<std::uint32_t>(dirs[i]);
    EXPECT_TRUE(code == 0 || (code & (code - 1)) == 0);  // power of two
    EXPECT_LE(code, 128U);
  }

  // Terrain kernels get terrain; imaging kernels get images — different
  // generators, so the rasters differ.
  const auto dem = make_input(spec, *registry.create("flow-routing"));
  const auto img = make_input(spec, *registry.create("gaussian-2d"));
  EXPECT_GT(grid::max_abs_diff(dem, img), 0.0);
}

TEST(WorkloadTest, SeedControlsTheData) {
  const auto registry = kernels::standard_registry();
  WorkloadSpec spec;
  spec.strip_size = 64;
  spec.element_size = 4;
  spec.data_bytes = 64 * 64;
  spec.with_data = true;
  const auto kernel = registry.create("flow-routing");
  const auto a = make_input(spec, *kernel);
  const auto b = make_input(spec, *kernel);
  spec.seed = 777;
  const auto c = make_input(spec, *kernel);
  EXPECT_EQ(a, b);
  EXPECT_GT(grid::max_abs_diff(a, c), 0.0);
}

TEST(WorkloadTest, ReferenceOutputMatchesKernelReference) {
  const auto registry = kernels::standard_registry();
  WorkloadSpec spec;
  spec.kernel_name = "gaussian-2d";
  spec.strip_size = 64;
  spec.element_size = 4;
  spec.data_bytes = 32 * 64;
  spec.with_data = true;
  const auto kernel = registry.create("gaussian-2d");
  EXPECT_EQ(make_reference_output(spec, *kernel),
            kernel->run_reference(make_input(spec, *kernel)));
}

TEST(WorkloadTest, MisalignedRowStripGeometryThrowsWithNumbers) {
  const auto registry = kernels::standard_registry();
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.raster_width = 300;  // 1200 B rows: whole rows, but not vs 1024 strips
  spec.data_bytes = 300 * 4 * 10;
  try {
    (void)make_input(spec, *registry.create("gaussian-2d"));
    FAIL() << "misaligned row/strip geometry was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("row length 1200"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("strip_size 1024"),
              std::string::npos)
        << e.what();
  }
}

TEST(WorkloadTest, PartialTrailingRowThrowsWithRemainder) {
  const auto registry = kernels::standard_registry();
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.data_bytes = 64 * 1024 + 100;  // 100 B past the last whole row
  try {
    (void)make_input(spec, *registry.create("gaussian-2d"));
    FAIL() << "partial trailing row was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("remainder 100"), std::string::npos)
        << e.what();
  }
}

TEST(WorkloadTest, RequireAlignedAcceptsAlignedGeometry) {
  WorkloadSpec spec;
  spec.strip_size = 1024;
  spec.element_size = 4;
  spec.data_bytes = 64 * 1024;
  EXPECT_NO_THROW(spec.require_aligned());
}

}  // namespace
}  // namespace das::core
