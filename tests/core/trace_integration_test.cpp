// End-to-end tracing through run_scheme: a traced NAS run with cache and
// prefetch covers every resource category, emits well-formed async scopes
// (each begin matched by an end), keeps per-track span timestamps monotone,
// and — the load-bearing invariant — produces byte-identical results to the
// same run untraced.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "core/scheme.hpp"
#include "simkit/trace.hpp"

namespace das::core {
namespace {

SchemeRunOptions traced_nas_options() {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 128ULL << 20;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.repeat_count = 2;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 64ULL << 20;
  o.cluster.prefetch.enabled = true;
  o.cluster.prefetch.depth = 2;
  return o;
}

// The global tracer is process-wide state: always leave it the way the
// other tests expect it (disabled, empty).
class TraceIntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    sim::Tracer& tracer = sim::Tracer::global();
    tracer.disable();
    tracer.clear();
  }
};

TEST_F(TraceIntegrationTest, TracedRunCoversEveryResourceCategory) {
  sim::Tracer& tracer = sim::Tracer::global();
  tracer.clear();
  tracer.enable();
  static_cast<void>(run_scheme(traced_nas_options()));
  tracer.disable();

  std::set<std::string> cats;
  for (const sim::TraceEvent& e : tracer.events()) cats.insert(e.cat);
  for (const char* expected :
       {"net", "disk", "compute", "cache", "prefetch", "request"}) {
    EXPECT_TRUE(cats.count(expected)) << "missing category " << expected;
  }
}

TEST_F(TraceIntegrationTest, EveryAsyncScopeOpensAndCloses) {
  sim::Tracer& tracer = sim::Tracer::global();
  tracer.clear();
  tracer.enable();
  static_cast<void>(run_scheme(traced_nas_options()));
  tracer.disable();

  // (cat, id) identifies a scope; every 'b' needs exactly one 'e'.
  std::map<std::pair<std::string, std::uint64_t>, int> open;
  std::size_t scopes = 0;
  for (const sim::TraceEvent& e : tracer.sorted_events()) {
    if (e.ph == 'b') {
      ++open[{e.cat, e.id}];
      ++scopes;
    } else if (e.ph == 'e') {
      --open[{e.cat, e.id}];
    }
  }
  EXPECT_GT(scopes, 0U);
  for (const auto& [key, balance] : open) {
    EXPECT_EQ(balance, 0) << key.first << " id " << key.second;
  }
}

TEST_F(TraceIntegrationTest, SpanTimestampsAreMonotonePerTrack) {
  sim::Tracer& tracer = sim::Tracer::global();
  tracer.clear();
  tracer.enable();
  static_cast<void>(run_scheme(traced_nas_options()));
  tracer.disable();

  std::map<std::pair<std::uint32_t, std::uint32_t>, sim::SimTime> last_ts;
  std::size_t spans = 0;
  for (const sim::TraceEvent& e : tracer.sorted_events()) {
    if (e.ph != 'X') continue;
    ++spans;
    EXPECT_GE(e.ts, 0);
    EXPECT_GE(e.dur, 0);
    auto [it, inserted] = last_ts.try_emplace({e.pid, e.tid}, e.ts);
    if (!inserted) {
      EXPECT_GE(e.ts, it->second) << "track (" << e.pid << "," << e.tid
                                  << ") went backwards";
      it->second = e.ts;
    }
  }
  EXPECT_GT(spans, 0U);
}

TEST_F(TraceIntegrationTest, TracingDoesNotChangeResults) {
  const SchemeRunOptions o = traced_nas_options();
  const RunReport untraced = run_scheme(o);

  sim::Tracer& tracer = sim::Tracer::global();
  tracer.clear();
  tracer.enable();
  const RunReport traced = run_scheme(o);
  tracer.disable();

  EXPECT_EQ(to_csv(traced), to_csv(untraced));
}

TEST_F(TraceIntegrationTest, BufferRendersAsATraceEventDocument) {
  sim::Tracer& tracer = sim::Tracer::global();
  tracer.clear();
  tracer.enable();
  static_cast<void>(run_scheme(traced_nas_options()));
  tracer.disable();

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

}  // namespace
}  // namespace das::core
