// End-to-end tracing through run_scheme: a traced NAS run with cache and
// prefetch covers every resource category, emits well-formed async scopes
// (each begin matched by an end), keeps per-track span timestamps monotone,
// and — the load-bearing invariant — produces byte-identical results to the
// same run untraced. Tracers are per-run (sim::RunContext), so each test
// simply builds a fresh context; merge_from is checked to reproduce serial
// accumulation across runs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "core/scheme.hpp"
#include "simkit/context.hpp"
#include "simkit/trace.hpp"

namespace das::core {
namespace {

SchemeRunOptions traced_nas_options() {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 128ULL << 20;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  o.repeat_count = 2;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 64ULL << 20;
  o.cluster.prefetch.enabled = true;
  o.cluster.prefetch.depth = 2;
  return o;
}

/// Run the canonical traced NAS workload against `context`'s tracer.
void run_traced(sim::RunContext& context) {
  context.tracer.enable();
  SchemeRunOptions o = traced_nas_options();
  o.context = &context;
  static_cast<void>(run_scheme(o));
}

TEST(TraceIntegrationTest, TracedRunCoversEveryResourceCategory) {
  sim::RunContext context;
  run_traced(context);

  std::set<std::string> cats;
  for (const sim::TraceEvent& e : context.tracer.events()) cats.insert(e.cat);
  for (const char* expected :
       {"net", "disk", "compute", "cache", "prefetch", "request"}) {
    EXPECT_TRUE(cats.count(expected)) << "missing category " << expected;
  }
}

TEST(TraceIntegrationTest, EveryAsyncScopeOpensAndCloses) {
  sim::RunContext context;
  run_traced(context);

  // (cat, id) identifies a scope; every 'b' needs exactly one 'e'.
  std::map<std::pair<std::string, std::uint64_t>, int> open;
  std::size_t scopes = 0;
  for (const sim::TraceEvent& e : context.tracer.sorted_events()) {
    if (e.ph == 'b') {
      ++open[{e.cat, e.id}];
      ++scopes;
    } else if (e.ph == 'e') {
      --open[{e.cat, e.id}];
    }
  }
  EXPECT_GT(scopes, 0U);
  for (const auto& [key, balance] : open) {
    EXPECT_EQ(balance, 0) << key.first << " id " << key.second;
  }
}

TEST(TraceIntegrationTest, SpanTimestampsAreMonotonePerTrack) {
  sim::RunContext context;
  run_traced(context);

  std::map<std::pair<std::uint32_t, std::uint32_t>, sim::SimTime> last_ts;
  std::size_t spans = 0;
  for (const sim::TraceEvent& e : context.tracer.sorted_events()) {
    if (e.ph != 'X') continue;
    ++spans;
    EXPECT_GE(e.ts, 0);
    EXPECT_GE(e.dur, 0);
    auto [it, inserted] = last_ts.try_emplace({e.pid, e.tid}, e.ts);
    if (!inserted) {
      EXPECT_GE(e.ts, it->second) << "track (" << e.pid << "," << e.tid
                                  << ") went backwards";
      it->second = e.ts;
    }
  }
  EXPECT_GT(spans, 0U);
}

TEST(TraceIntegrationTest, TracingDoesNotChangeResults) {
  const RunReport untraced = run_scheme(traced_nas_options());

  sim::RunContext context;
  context.tracer.enable();
  SchemeRunOptions o = traced_nas_options();
  o.context = &context;
  const RunReport traced = run_scheme(o);

  EXPECT_EQ(to_csv(traced), to_csv(untraced));
}

TEST(TraceIntegrationTest, BufferRendersAsATraceEventDocument) {
  sim::RunContext context;
  run_traced(context);

  const std::string json = context.tracer.to_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceIntegrationTest, MergingPerRunTracersMatchesSerialAccumulation) {
  // Two runs into one shared tracer (the old serial behaviour)...
  sim::RunContext shared;
  run_traced(shared);
  {
    SchemeRunOptions o = traced_nas_options();
    o.context = &shared;
    static_cast<void>(run_scheme(o));
  }

  // ...must render identically to two per-run tracers merged in run order.
  sim::RunContext first;
  sim::RunContext second;
  run_traced(first);
  run_traced(second);
  sim::Tracer merged;
  merged.enable();
  merged.merge_from(first.tracer);
  merged.merge_from(second.tracer);

  EXPECT_EQ(merged.event_count(), shared.tracer.event_count());
  EXPECT_EQ(merged.to_json(), shared.tracer.to_json());
}

}  // namespace
}  // namespace das::core
