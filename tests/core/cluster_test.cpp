#include "core/cluster.hpp"

#include <gtest/gtest.h>

namespace das::core {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.storage_nodes = 3;
  cfg.compute_nodes = 2;
  return cfg;
}

TEST(ClusterTest, NodeIdAssignment) {
  Cluster cluster(small_config());
  EXPECT_EQ(cluster.storage_node(0), 0U);
  EXPECT_EQ(cluster.storage_node(2), 2U);
  EXPECT_EQ(cluster.compute_node(0), 3U);
  EXPECT_EQ(cluster.compute_node(1), 4U);
}

TEST(ClusterTest, NetworkCoversAllNodes) {
  Cluster cluster(small_config());
  EXPECT_EQ(cluster.network().num_nodes(), 5U);
}

TEST(ClusterTest, PfsHasOneServerPerStorageNode) {
  Cluster cluster(small_config());
  EXPECT_EQ(cluster.pfs().num_servers(), 3U);
  EXPECT_EQ(cluster.pfs().server(1).node(), 1U);
}

TEST(ClusterTest, EveryNodeHasAComputeEngine) {
  Cluster cluster(small_config());
  for (net::NodeId n = 0; n < 5; ++n) {
    EXPECT_GT(cluster.engine(n).config().rate_bps, 0.0);
  }
}

TEST(ClusterTest, ClientsLiveOnComputeNodes) {
  Cluster cluster(small_config());
  EXPECT_EQ(cluster.client(0).node(), 3U);
  EXPECT_EQ(cluster.client(1).node(), 4U);
}

TEST(ClusterTest, ConfigPropagatesToComponents) {
  ClusterConfig cfg = small_config();
  cfg.nic_bandwidth_bps = 42.0 * 1024 * 1024;
  cfg.disk_bandwidth_bps = 77.0 * 1024 * 1024;
  Cluster cluster(cfg);
  EXPECT_DOUBLE_EQ(cluster.network().nic(0).bandwidth_bps(),
                   42.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(cluster.pfs().server(0).disk().config().bandwidth_bps,
                   77.0 * 1024 * 1024);
}

TEST(ClusterTest, PaperDefaultsAreOneToOne) {
  const ClusterConfig cfg;
  EXPECT_EQ(cfg.storage_nodes, cfg.compute_nodes);
  EXPECT_EQ(cfg.total_nodes(), 24U);
}

TEST(ClusterDeathTest, OutOfRangeLookupsAbort) {
  Cluster cluster(small_config());
  EXPECT_DEATH(cluster.storage_node(3), "DAS_REQUIRE");
  EXPECT_DEATH(cluster.compute_node(2), "DAS_REQUIRE");
  EXPECT_DEATH(cluster.engine(99), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::core
