// Migration trigger + cost model: divergence threshold, hysteresis streak,
// noise floor, payback gate, and the one-shot launch latch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/bandwidth_model.hpp"
#include "core/decision.hpp"
#include "core/distribution_planner.hpp"
#include "core/migration_planner.hpp"
#include "pfs/layout.hpp"

namespace das::core {
namespace {

class MigrationPlannerFixture : public ::testing::Test {
 protected:
  MigrationPlannerFixture() {
    meta_.name = "f";
    meta_.strip_size = 64;
    meta_.element_size = 4;
    meta_.raster_width = 16;  // one row per strip
    meta_.size_bytes = 64 * 64;
    offsets_ = {-16, 16};  // vertical stencil: +-1 strip
    distribution_.group_size = 16;
    distribution_.halo = 1;
    distribution_.max_capacity_overhead = 0.25;
  }

  MigrationConfig enabled_config() const {
    MigrationConfig config;
    config.enabled = true;
    config.divergence_threshold = 2.0;
    config.hysteresis_passes = 2;
    config.min_observed_bytes = 1;
    return config;
  }

  /// The placement the planner will recommend, and its predicted per-pass
  /// halo bytes (the divergence baseline).
  std::uint64_t predicted_halo(PlacementSpec* spec_out = nullptr) const {
    const DistributionPlanner planner(distribution_);
    const auto spec = planner.plan(meta_, offsets_, 4);
    EXPECT_TRUE(spec.has_value());
    if (spec_out != nullptr) *spec_out = *spec;
    return forecast_traffic(meta_, offsets_, *spec, 0)
        .active_strip_fetch_bytes;
  }

  pfs::FileMeta meta_;
  std::vector<std::int64_t> offsets_;
  DistributionConfig distribution_;
  pfs::RoundRobinLayout current_{4};
};

TEST_F(MigrationPlannerFixture, DisabledNeverRecommends) {
  MigrationConfig config;  // enabled defaults to false
  MigrationPlanner planner(distribution_, config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(
        planner.observe(meta_, current_, offsets_, 1ULL << 30, 100));
  }
  EXPECT_EQ(planner.streak(), 0U);
}

TEST_F(MigrationPlannerFixture, HysteresisRequiresConsecutivePasses) {
  MigrationPlanner planner(distribution_, enabled_config());
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 100));
  EXPECT_EQ(planner.streak(), 1U);
  const auto plan = planner.observe(meta_, current_, offsets_, 1ULL << 20, 99);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->move_bytes, 0U);
  PlacementSpec expected;
  predicted_halo(&expected);
  EXPECT_EQ(plan->target, expected);
  EXPECT_FALSE(plan->rationale.empty());
}

TEST_F(MigrationPlannerFixture, QuietPassResetsTheStreak) {
  MigrationPlanner planner(distribution_, enabled_config());
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 100));
  EXPECT_EQ(planner.streak(), 1U);
  // A pass at exactly the predicted cost is not divergent.
  EXPECT_FALSE(
      planner.observe(meta_, current_, offsets_, predicted_halo(), 99));
  EXPECT_EQ(planner.streak(), 0U);
  // The count starts over afterwards.
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 98));
  EXPECT_EQ(planner.streak(), 1U);
}

TEST_F(MigrationPlannerFixture, NoiseFloorIgnoresTinyTraffic) {
  MigrationConfig config = enabled_config();
  config.min_observed_bytes = 1ULL << 30;
  MigrationPlanner planner(distribution_, config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 100));
  }
  EXPECT_EQ(planner.streak(), 0U);
}

TEST_F(MigrationPlannerFixture, AlreadyOnBestPlacementDoesNothing) {
  MigrationPlanner planner(distribution_, enabled_config());
  PlacementSpec best;
  predicted_halo(&best);
  const std::unique_ptr<pfs::Layout> layout = best.make_layout();
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(planner.observe(meta_, *layout, offsets_, 1ULL << 20, 100));
  }
  EXPECT_EQ(planner.streak(), 0U);
}

TEST_F(MigrationPlannerFixture, PaybackGateBlocksUnprofitableMoves) {
  MigrationPlanner planner(distribution_, enabled_config());
  // Divergent by a hair: savings per pass is ~one byte, never worth the
  // move even over many passes.
  const std::uint64_t barely =
      static_cast<std::uint64_t>(2.0 * static_cast<double>(predicted_halo())) +
      1;
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, barely, 100));
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, barely, 99));
  // The streak survives the failed payback test (the divergence is real).
  EXPECT_GE(planner.streak(), 2U);
}

TEST_F(MigrationPlannerFixture, ZeroRemainingPassesNeverPaysBack) {
  MigrationPlanner planner(distribution_, enabled_config());
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 100));
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 0));
}

TEST_F(MigrationPlannerFixture, LaunchLatchStopsFurtherRecommendations) {
  MigrationPlanner planner(distribution_, enabled_config());
  EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 100));
  ASSERT_TRUE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 99));
  planner.notify_launched();
  EXPECT_TRUE(planner.launched());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(planner.observe(meta_, current_, offsets_, 1ULL << 20, 98));
  }
}

TEST_F(MigrationPlannerFixture, UnknownLayoutFamilyStillMigratable) {
  // The traffic engine's replicated round-robin is outside the bandwidth
  // model's parameter space; the planner must not crash on it and may still
  // recommend moving off it.
  MigrationPlanner planner(distribution_, enabled_config());
  const pfs::ReplicatedRoundRobinLayout rrr(4, 2);
  EXPECT_FALSE(planner.observe(meta_, rrr, offsets_, 1ULL << 20, 100));
  EXPECT_TRUE(planner.observe(meta_, rrr, offsets_, 1ULL << 20, 99));
}

}  // namespace
}  // namespace das::core
