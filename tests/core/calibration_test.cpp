// Calibrated compute-cost model: per-kernel factor overrides must (a) be a
// strict no-op when they restate the built-in factors, (b) slow simulated
// execution monotonically as a kernel's factor grows, and (c) leave kernels
// they do not name untouched — so feeding --calibrate-kernels output into
// --kernel-cost changes scheme comparisons coherently, never arbitrarily.
#include <gtest/gtest.h>

#include <string>

#include "core/scheme.hpp"
#include "kernels/calibrate.hpp"
#include "kernels/registry.hpp"

namespace das::core {
namespace {

SchemeRunOptions timing_options(Scheme scheme, const std::string& kernel) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = kernel;
  o.workload.data_bytes = 1ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  return o;
}

TEST(ComputeCostModelTest, FactorForFallsBackWhenUnset) {
  ComputeCostModel model;
  EXPECT_FALSE(model.active());
  EXPECT_DOUBLE_EQ(model.factor_for("gaussian-2d", 1.5), 1.5);
  model.kernel_cost_factor["gaussian-2d"] = 4.25;
  EXPECT_TRUE(model.active());
  EXPECT_DOUBLE_EQ(model.factor_for("gaussian-2d", 1.5), 4.25);
  EXPECT_DOUBLE_EQ(model.factor_for("median-3x3", 2.5), 2.5);
}

TEST(ComputeCostModelTest, RestatingBuiltInFactorsIsANoOp) {
  const auto registry = kernels::standard_registry();
  for (const Scheme scheme : {Scheme::kTS, Scheme::kDAS}) {
    SchemeRunOptions base = timing_options(scheme, "gaussian-2d");
    const RunReport baseline = run_scheme(base);

    SchemeRunOptions restated = base;
    for (const std::string& name : registry.names()) {
      restated.cluster.compute_cost.kernel_cost_factor[name] =
          registry.create(name)->cost_factor();
    }
    const RunReport report = run_scheme(restated);
    EXPECT_EQ(report.exec_seconds, baseline.exec_seconds)
        << to_string(scheme);
    EXPECT_EQ(report.client_server_bytes, baseline.client_server_bytes);
    EXPECT_EQ(report.server_server_bytes, baseline.server_server_bytes);
    EXPECT_EQ(report.offloaded, baseline.offloaded);
  }
}

TEST(ComputeCostModelTest, SlowerKernelRunsStrictlyLonger) {
  for (const Scheme scheme : {Scheme::kTS, Scheme::kDAS}) {
    double previous = 0.0;
    for (const double factor : {1.5, 6.0, 24.0}) {  // built-in is 1.5
      SchemeRunOptions o = timing_options(scheme, "gaussian-2d");
      o.cluster.compute_cost.kernel_cost_factor["gaussian-2d"] = factor;
      const RunReport report = run_scheme(o);
      EXPECT_GT(report.exec_seconds, previous)
          << to_string(scheme) << " factor " << factor;
      previous = report.exec_seconds;
    }
  }
}

TEST(ComputeCostModelTest, UnnamedKernelsAreUntouched) {
  SchemeRunOptions base = timing_options(Scheme::kDAS, "laplacian-4");
  const RunReport baseline = run_scheme(base);
  SchemeRunOptions other = base;
  other.cluster.compute_cost.kernel_cost_factor["median-3x3"] = 100.0;
  const RunReport report = run_scheme(other);
  EXPECT_EQ(report.exec_seconds, baseline.exec_seconds);
}

// Calibration makes compute so much faster than the 2012-era default that a
// previously compute-bound comparison turns bandwidth-bound: with the same
// calibrated table, cheaper compute shrinks exec time for every scheme, and
// the TS-vs-DAS gap moves toward the pure byte-flow ratio. Assert the
// coherent direction, not machine-specific magnitudes.
TEST(ComputeCostModelTest, CalibratedRatesShiftSchemeComparisonCoherently) {
  SchemeRunOptions slow_ts = timing_options(Scheme::kTS, "gaussian-2d");
  slow_ts.cluster.compute_rate_bps = 50.0 * 1024 * 1024;  // compute-bound
  SchemeRunOptions slow_das = slow_ts;
  slow_das.scheme = Scheme::kDAS;
  const double ts_slow = run_scheme(slow_ts).exec_seconds;
  const double das_slow = run_scheme(slow_das).exec_seconds;

  SchemeRunOptions fast_ts = slow_ts;
  SchemeRunOptions fast_das = slow_das;
  // A calibrated machine: 8x the per-byte compute rate, same relative kernel
  // cost (what --calibrate-kernels + --compute-mibps feed back).
  fast_ts.cluster.compute_rate_bps = 400.0 * 1024 * 1024;
  fast_das.cluster.compute_rate_bps = 400.0 * 1024 * 1024;
  const double ts_fast = run_scheme(fast_ts).exec_seconds;
  const double das_fast = run_scheme(fast_das).exec_seconds;

  EXPECT_LT(ts_fast, ts_slow);
  EXPECT_LT(das_fast, das_slow);
  // Compute-bound: both schemes pay the same dominant compute bill, so they
  // are close. Bandwidth-bound: DAS's byte-flow advantage re-emerges.
  const double gap_slow = ts_slow / das_slow;
  const double gap_fast = ts_fast / das_fast;
  EXPECT_GT(gap_fast, gap_slow);
}

TEST(KernelCalibrationTest, ReportIsWellFormed) {
  const kernels::CalibrationReport report =
      kernels::calibrate_kernels(64, 48, 1);
  // The five stencils plus flow-routing (vectorized in the list-I/O PR).
  ASSERT_EQ(report.kernels.size(), 6U);
  double best = 0.0;
  for (const auto& k : report.kernels) {
    EXPECT_GT(k.cells_per_second, 0.0) << k.name;
    EXPECT_GT(k.mib_per_second, 0.0) << k.name;
    EXPECT_GE(k.cost_factor, 1.0) << k.name;  // anchored to the fastest
    best = std::max(best, k.mib_per_second);
  }
  EXPECT_DOUBLE_EQ(report.anchor_mibps, best);
  const std::string flag = report.kernel_cost_flag();
  EXPECT_NE(flag.find("laplacian-4:"), std::string::npos);
  EXPECT_NE(flag.find("flow-routing:"), std::string::npos);
  EXPECT_NE(flag.find("raster-statistics:"), std::string::npos);
  EXPECT_NE(report.format().find("--compute-mibps"), std::string::npos);
}

}  // namespace
}  // namespace das::core
