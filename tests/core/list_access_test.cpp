// Access-pattern parsing, halo math, region construction, pricing stats
// and the TS-vs-DAS list decision: sparser access must monotonically
// cheapen the list-served path and eventually flip the decision away from
// offload — the coherence property the acceptance gate checks end to end.
#include "core/list_access.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace das::core {
namespace {

pfs::FileMeta raster_meta(std::uint32_t width, std::uint32_t height) {
  pfs::FileMeta meta;
  meta.name = "list-access-test";
  meta.raster_width = width;
  meta.raster_height = height;
  meta.element_size = 4;
  meta.size_bytes = static_cast<std::uint64_t>(width) * height * 4;
  meta.strip_size = 64 * 1024;
  return meta;
}

/// The 8-neighbour dependence offsets of a width-W raster stencil.
std::vector<std::int64_t> eight_neighbor_offsets(std::int64_t w) {
  return {-w - 1, -w, -w + 1, -1, 1, w - 1, w, w + 1};
}

TEST(AccessSpecTest, ParseRoundTrips) {
  const AccessSpec strided = AccessSpec::parse("strided:8");
  EXPECT_EQ(strided.mode, AccessSpec::Mode::kStrided);
  EXPECT_EQ(strided.stride, 8U);
  EXPECT_EQ(strided.label(), "strided:8");

  const AccessSpec column = AccessSpec::parse("column");
  EXPECT_EQ(column.mode, AccessSpec::Mode::kColumn);
  EXPECT_EQ(column.label(), "column");

  const AccessSpec trace = AccessSpec::parse("trace:/tmp/runs.txt");
  EXPECT_EQ(trace.mode, AccessSpec::Mode::kTrace);
  EXPECT_EQ(trace.trace_path, "/tmp/runs.txt");
}

TEST(AccessSpecTest, ParseRejectsGarbage) {
  EXPECT_THROW(AccessSpec::parse("diagonal"), std::invalid_argument);
  EXPECT_THROW(AccessSpec::parse("strided:0"), std::invalid_argument);
  EXPECT_THROW(AccessSpec::parse("strided:x"), std::invalid_argument);
}

TEST(HaloRowsTest, EightNeighborStencilIsOneRow) {
  const pfs::FileMeta meta = raster_meta(1024, 512);
  // The widest offset is width+1 elements, but that is the diagonal
  // neighbour ONE row away — halo must round to the nearest row, not ceil.
  EXPECT_EQ(halo_rows_for(meta, eight_neighbor_offsets(1024)), 1U);
}

TEST(HaloRowsTest, PointwiseKernelHasNoHalo) {
  const pfs::FileMeta meta = raster_meta(1024, 512);
  EXPECT_EQ(halo_rows_for(meta, {}), 0U);
}

TEST(BuildRegionsTest, StridedSamplesRowsWithHalo) {
  const std::uint32_t width = 256;
  const std::uint32_t height = 64;
  const pfs::FileMeta meta = raster_meta(width, height);
  const std::uint64_t row_bytes = width * 4ULL;

  AccessSpec spec;
  spec.mode = AccessSpec::Mode::kStrided;
  spec.stride = 8;
  const pfs::RegionList regions = build_access_regions(meta, spec, 1);

  // Sampled rows start at row 1 (halo above), so the first fetched run
  // starts at row 0 and covers 3 rows (sample +- 1 halo row).
  ASSERT_FALSE(regions.empty());
  EXPECT_EQ(regions.runs()[0].offset, 0U);
  EXPECT_EQ(regions.runs()[0].length, 3 * row_bytes);
  EXPECT_EQ(regions.encoding(), pfs::RegionEncoding::kStrided);
  // 8 samples (rows 1, 9, ..., 57): payload = 24 rows of 64.
  EXPECT_EQ(regions.runs().size(), 8U);
  EXPECT_EQ(regions.total_bytes(), 8 * 3 * row_bytes);
}

TEST(BuildRegionsTest, DenseStrideDegeneratesToOneRun) {
  const pfs::FileMeta meta = raster_meta(256, 64);
  AccessSpec spec;
  spec.mode = AccessSpec::Mode::kStrided;
  spec.stride = 2;  // k <= 2*halo: every byte is touched anyway
  const pfs::RegionList regions = build_access_regions(meta, spec, 1);
  ASSERT_EQ(regions.runs().size(), 1U);
  EXPECT_EQ(regions.runs()[0], (pfs::Run{0, meta.size_bytes}));
}

TEST(BuildRegionsTest, ColumnIsOneShortRunPerRow) {
  const std::uint32_t width = 256;
  const std::uint32_t height = 64;
  const pfs::FileMeta meta = raster_meta(width, height);
  AccessSpec spec;
  spec.mode = AccessSpec::Mode::kColumn;
  const pfs::RegionList regions = build_access_regions(meta, spec, 1);

  ASSERT_EQ(regions.runs().size(), height);
  // Middle column +- 1 halo column: 3 elements = 12 bytes per row.
  EXPECT_EQ(regions.runs()[0].length, 12U);
  EXPECT_EQ(regions.encoding(), pfs::RegionEncoding::kStrided);
}

TEST(ListStatsTest, CountsHeadersAndCoalescing) {
  const pfs::FileMeta meta = raster_meta(256, 64);
  AccessSpec spec;
  spec.mode = AccessSpec::Mode::kStrided;
  spec.stride = 8;
  const pfs::RegionList regions = build_access_regions(meta, spec, 1);
  const ListStats stats = list_stats(meta, regions, 4);

  EXPECT_EQ(stats.payload_bytes, regions.total_bytes());
  EXPECT_GE(stats.runs, regions.runs().size());
  EXPECT_GT(stats.request_header_bytes, 0U);
  EXPECT_EQ(stats.reply_framing_bytes,
            stats.runs * pfs::kListReplyRunBytes);
  EXPECT_GE(stats.coalescing_factor(), 1.0);
  EXPECT_LE(stats.coalesced_extents, stats.runs);
  EXPECT_EQ(stats.wire_bytes(), stats.payload_bytes +
                                    stats.request_header_bytes +
                                    stats.reply_framing_bytes);
}

TEST(AccessOutputTest, SampledFractionOfFullOutput) {
  const pfs::FileMeta meta = raster_meta(256, 64);
  const std::uint64_t full = meta.size_bytes;

  AccessSpec strided;
  strided.mode = AccessSpec::Mode::kStrided;
  strided.stride = 8;
  // 8 of 63 sampled rows (starting at the halo row, stepping 8).
  const std::uint64_t strided_out =
      access_output_bytes(meta, strided, 1, full);
  EXPECT_LT(strided_out, full / 4);
  EXPECT_GT(strided_out, 0U);

  AccessSpec column;
  column.mode = AccessSpec::Mode::kColumn;
  EXPECT_EQ(access_output_bytes(meta, column, 1, full), full / 256);

  AccessSpec none;
  EXPECT_EQ(access_output_bytes(meta, none, 1, full), full);
}

TEST(ListDecisionTest, SparserAccessFlipsAwayFromOffload) {
  // A large raster where the dense sweep clearly favors offload; as k
  // grows the list path touches ever fewer bytes and must win.
  const std::uint32_t width = 16 * 1024;
  const std::uint32_t height = 16 * 1024;
  const pfs::FileMeta meta = raster_meta(width, height);
  const auto offsets = eight_neighbor_offsets(width);
  ClusterConfig cluster;
  cluster.storage_nodes = 4;
  cluster.compute_nodes = 4;
  DistributionConfig distribution;

  double prev_normal = 0.0;
  bool seen_offload = false;
  bool seen_normal = false;
  OffloadAction last = OffloadAction::kOffload;
  for (const std::uint32_t k : {2U, 4U, 8U, 16U, 32U, 64U}) {
    AccessSpec spec;
    spec.mode = AccessSpec::Mode::kStrided;
    spec.stride = k;
    const std::uint32_t halo = halo_rows_for(meta, offsets);
    const pfs::RegionList regions = build_access_regions(meta, spec, halo);
    const ListStats stats = list_stats(meta, regions, 4);
    const std::uint64_t full_output = meta.size_bytes;
    const ListDecision d = decide_list_access(
        meta, offsets, stats, cluster, distribution, 1.0, full_output,
        access_output_bytes(meta, spec, halo, full_output));

    if (prev_normal > 0.0) {
      EXPECT_LE(d.normal_seconds, prev_normal)
          << "k=" << k << ": sparser access must not cost more";
    }
    prev_normal = d.normal_seconds;
    if (d.action == OffloadAction::kOffload) {
      seen_offload = true;
      EXPECT_FALSE(seen_normal)
          << "k=" << k << ": decision must flip once, not oscillate";
    } else {
      seen_normal = true;
    }
    last = d.action;
    EXPECT_FALSE(d.rationale.empty());
  }
  EXPECT_TRUE(seen_offload) << "dense access should favor offload";
  EXPECT_TRUE(seen_normal) << "sparse access should favor list serving";
  EXPECT_EQ(last, OffloadAction::kServeNormal);
}

}  // namespace
}  // namespace das::core
