// Reduction offloading: the classic active-storage case the paper's related
// work targets (scan kernels, tiny outputs, no dependence). DAS behaves like
// plain active storage here — its dependence machinery sees an empty offset
// list and offloads unconditionally — and NAS equals DAS.
#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions reduction_options(Scheme scheme) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = "raster-statistics";
  o.workload.data_bytes = 2ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  return o;
}

TEST(ReductionTest, AllSchemesComplete) {
  for (const Scheme s : {Scheme::kTS, Scheme::kNAS, Scheme::kDAS}) {
    const RunReport r = run_scheme(reduction_options(s));
    EXPECT_GT(r.exec_seconds, 0.0) << to_string(s);
  }
}

TEST(ReductionTest, OffloadingCrushesTraditionalStorage) {
  const RunReport ts = run_scheme(reduction_options(Scheme::kTS));
  const RunReport das = run_scheme(reduction_options(Scheme::kDAS));
  // TS must stream the whole input to the clients; the active schemes move
  // a few dozen bytes per server.
  EXPECT_LT(das.exec_seconds, 0.5 * ts.exec_seconds);
  EXPECT_EQ(ts.client_server_bytes, 2ULL << 30);  // input only, no write-back
  EXPECT_LT(das.client_server_bytes, 1ULL << 20);
}

TEST(ReductionTest, NasEqualsDasWithoutDependence) {
  // The paper's contribution is dependence awareness; with no dependence
  // there is nothing to be aware of, and the two offloads coincide.
  const RunReport nas = run_scheme(reduction_options(Scheme::kNAS));
  const RunReport das = run_scheme(reduction_options(Scheme::kDAS));
  EXPECT_NEAR(nas.exec_seconds, das.exec_seconds,
              0.02 * nas.exec_seconds);
  EXPECT_EQ(nas.server_server_bytes, 0U);
  EXPECT_EQ(das.server_server_bytes, 0U);
}

TEST(ReductionTest, DasDecisionOffloadsWithoutRedistribution) {
  const RunReport das = run_scheme(reduction_options(Scheme::kDAS));
  EXPECT_TRUE(das.offloaded);
  EXPECT_FALSE(das.redistributed);
  EXPECT_EQ(das.redistribution_bytes, 0U);
}

TEST(ReductionTest, ActiveResultTrafficIsOnePartialPerRun) {
  const RunReport das = run_scheme(reduction_options(Scheme::kDAS));
  // 2048 strips round-robin over 4 servers: 512 single-strip runs per
  // server, one 64 B partial each.
  EXPECT_EQ(das.client_server_bytes, 2048U * 64);
}

TEST(ReductionDeathTest, DataModeIsRejected) {
  SchemeRunOptions o = reduction_options(Scheme::kNAS);
  o.workload.data_bytes = 64 * 64;
  o.workload.strip_size = 64;
  o.workload.with_data = true;
  EXPECT_DEATH(run_scheme(o), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::core
