// End-to-end executor tests in data mode: the simulated schemes carry real
// bytes, and each scheme's distributed output must equal the sequential
// reference bit for bit.
#include <gtest/gtest.h>

#include "core/active_executor.hpp"
#include "core/bandwidth_model.hpp"
#include "core/ts_executor.hpp"
#include "core/workload.hpp"
#include "grid/serialize.hpp"
#include "kernels/registry.hpp"

namespace das::core {
namespace {

class ExecutorFixture : public ::testing::Test {
 protected:
  ExecutorFixture() : registry_(kernels::standard_registry()) {
    config_.storage_nodes = 4;
    config_.compute_nodes = 4;
    config_.job_startup = 0;
  }

  WorkloadSpec workload(const std::string& kernel) const {
    WorkloadSpec spec;
    spec.kernel_name = kernel;
    spec.strip_size = 64;
    spec.element_size = 4;      // width 16, one row per strip
    spec.data_bytes = 64 * 64;  // 64 strips / rows
    spec.with_data = true;
    return spec;
  }

  /// Creates the cluster, input file (with data) and empty output file.
  void setup(const std::string& kernel_name,
             std::unique_ptr<pfs::Layout> in_layout) {
    cluster_ = std::make_unique<Cluster>(config_);
    kernel_ = registry_.create(kernel_name);
    spec_ = workload(kernel_name);
    ASSERT_TRUE(spec_.geometry_aligned());

    input_grid_ = make_input(spec_, *kernel_);
    const auto bytes = grid::to_bytes(input_grid_);
    pfs::FileMeta meta = spec_.make_meta("input");
    input_ = cluster_->pfs().create_file(meta, in_layout->clone(), &bytes);
    pfs::FileMeta out_meta = meta;
    out_meta.name = "output";
    output_ =
        cluster_->pfs().create_file(out_meta, std::move(in_layout), nullptr);

    const auto offsets =
        kernel_->features().resolve(spec_.width());
    halo_strips_ = required_halo_strips(offsets, spec_.element_size,
                                        spec_.strip_size);
  }

  grid::Grid<float> gathered_output() {
    return grid::from_bytes(cluster_->pfs().gather_bytes(output_),
                            spec_.width(), spec_.height());
  }

  ClusterConfig config_;
  kernels::KernelRegistry registry_;
  std::unique_ptr<Cluster> cluster_;
  kernels::KernelPtr kernel_;
  WorkloadSpec spec_;
  grid::Grid<float> input_grid_;
  pfs::FileId input_ = pfs::kInvalidFile;
  pfs::FileId output_ = pfs::kInvalidFile;
  std::uint64_t halo_strips_ = 0;
};

TEST_F(ExecutorFixture, TsProducesTheReferenceOutput) {
  setup("gaussian-2d", std::make_unique<pfs::RoundRobinLayout>(4));
  TsExecutor::Options opt{kernel_.get(), halo_strips_, true};
  TsExecutor ts(*cluster_, opt);
  bool done = false;
  ts.start(input_, output_, [&] { done = true; });
  cluster_->simulator().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(gathered_output(), kernel_->run_reference(input_grid_));
}

TEST_F(ExecutorFixture, TsMovesTheWholeFileTwiceOverClientLinks) {
  setup("flow-routing", std::make_unique<pfs::RoundRobinLayout>(4));
  TsExecutor::Options opt{kernel_.get(), halo_strips_, true};
  TsExecutor ts(*cluster_, opt);
  ts.start(input_, output_, nullptr);
  cluster_->simulator().run();
  const auto moved = cluster_->network().bytes_delivered(
      net::TrafficClass::kClientServer);
  // input (plus the halo over-read) out to clients, output back.
  EXPECT_GE(moved, 2 * spec_.data_bytes);
  EXPECT_LE(moved, 2 * spec_.data_bytes + 2 * halo_strips_ * 4 * 64);
  EXPECT_EQ(
      cluster_->network().bytes_delivered(net::TrafficClass::kServerServer),
      0U);
}

TEST_F(ExecutorFixture, NasOnRoundRobinFetchesHaloRemotely) {
  setup("flow-routing", std::make_unique<pfs::RoundRobinLayout>(4));
  ActiveExecutor::Options opt{kernel_.get(), halo_strips_, true};
  ActiveExecutor nas(*cluster_, opt);
  bool done = false;
  nas.start(input_, output_, [&] { done = true; });
  cluster_->simulator().run();
  ASSERT_TRUE(done);
  EXPECT_GT(nas.halo_strips_fetched(), 0U);
  EXPECT_GT(
      cluster_->network().bytes_delivered(net::TrafficClass::kServerServer),
      0U);
  EXPECT_EQ(gathered_output(), kernel_->run_reference(input_grid_));
}

TEST_F(ExecutorFixture, DasLayoutNeedsNoRemoteHalo) {
  setup("flow-routing", std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2));
  ActiveExecutor::Options opt{kernel_.get(), halo_strips_, true};
  ActiveExecutor das(*cluster_, opt);
  bool done = false;
  das.start(input_, output_, [&] { done = true; });
  cluster_->simulator().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(das.halo_strips_fetched(), 0U);
  EXPECT_EQ(gathered_output(), kernel_->run_reference(input_grid_));
}

TEST_F(ExecutorFixture, DasReplicaPropagationKeepsCopiesCoherent) {
  setup("gaussian-2d", std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2));
  ActiveExecutor::Options opt{kernel_.get(), halo_strips_, true};
  ActiveExecutor das(*cluster_, opt);
  das.start(input_, output_, nullptr);
  cluster_->simulator().run();

  const pfs::FileMeta& out_meta = cluster_->pfs().meta(output_);
  const pfs::Layout& layout = cluster_->pfs().layout(output_);
  const std::uint64_t n = out_meta.num_strips();
  for (std::uint64_t s = 0; s < n; ++s) {
    const auto holders = layout.holders(s, n);
    const auto primary_bytes =
        cluster_->pfs().server(holders.front()).store().buffer(output_, s);
    EXPECT_FALSE(primary_bytes.empty());
    for (const pfs::ServerIndex h : holders) {
      EXPECT_EQ(cluster_->pfs().server(h).store().buffer(output_, s),
                primary_bytes);
    }
  }
}

TEST_F(ExecutorFixture, AllThreeSchemesAgreeOnEveryTileExactKernel) {
  for (const std::string name : {"flow-routing", "gaussian-2d",
                                 "median-3x3"}) {
    setup(name, std::make_unique<pfs::RoundRobinLayout>(4));
    const auto reference = kernel_->run_reference(input_grid_);

    TsExecutor::Options topt{kernel_.get(), halo_strips_, true};
    TsExecutor ts(*cluster_, topt);
    ts.start(input_, output_, nullptr);
    cluster_->simulator().run();
    EXPECT_EQ(gathered_output(), reference) << "TS " << name;

    setup(name, std::make_unique<pfs::RoundRobinLayout>(4));
    ActiveExecutor nas(*cluster_,
                       ActiveExecutor::Options{kernel_.get(), halo_strips_,
                                               true});
    nas.start(input_, output_, nullptr);
    cluster_->simulator().run();
    EXPECT_EQ(gathered_output(), reference) << "NAS " << name;

    setup(name, std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2));
    ActiveExecutor das(*cluster_,
                       ActiveExecutor::Options{kernel_.get(), halo_strips_,
                                               true});
    das.start(input_, output_, nullptr);
    cluster_->simulator().run();
    EXPECT_EQ(gathered_output(), reference) << "DAS " << name;
  }
}

TEST_F(ExecutorFixture, DasFinishesBeforeNasOnTheSameWorkload) {
  setup("flow-routing", std::make_unique<pfs::RoundRobinLayout>(4));
  ActiveExecutor nas(*cluster_, ActiveExecutor::Options{
                                    kernel_.get(), halo_strips_, true});
  sim::SimTime nas_finish = -1;
  nas.start(input_, output_,
            [&] { nas_finish = cluster_->simulator().now(); });
  cluster_->simulator().run();

  setup("flow-routing", std::make_unique<pfs::DasReplicatedLayout>(4, 8, 2));
  ActiveExecutor das(*cluster_, ActiveExecutor::Options{
                                    kernel_.get(), halo_strips_, true});
  sim::SimTime das_finish = -1;
  das.start(input_, output_,
            [&] { das_finish = cluster_->simulator().now(); });
  cluster_->simulator().run();

  ASSERT_GE(nas_finish, 0);
  ASSERT_GE(das_finish, 0);
  EXPECT_LT(das_finish, nas_finish);
}

TEST_F(ExecutorFixture, AccumulationRunsInTimingModeWithoutData) {
  // The executors accept the non-tile-exact kernel; the timing path treats
  // it as one local pass (its exact distributed algorithm is validated in
  // kernels/flow_accumulation_test.cpp).
  WorkloadSpec spec = workload("flow-accumulation");
  spec.with_data = false;
  cluster_ = std::make_unique<Cluster>(config_);
  kernel_ = registry_.create("flow-accumulation");
  const pfs::FileMeta meta = spec.make_meta("input");
  input_ = cluster_->pfs().create_file(
      meta, std::make_unique<pfs::RoundRobinLayout>(4), nullptr);
  pfs::FileMeta out_meta = meta;
  out_meta.name = "output";
  output_ = cluster_->pfs().create_file(
      out_meta, std::make_unique<pfs::RoundRobinLayout>(4), nullptr);

  ActiveExecutor::Options opt{kernel_.get(), 2, false};
  ActiveExecutor exec(*cluster_, opt);
  bool done = false;
  exec.start(input_, output_, [&] { done = true; });
  cluster_->simulator().run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace das::core
