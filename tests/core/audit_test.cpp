// Decision-audit records through run_scheme: every scheme fills a valid
// predicted-vs-observed record, rates stay in [0, 1], residuals are the
// signed observed-minus-predicted differences, and the overlap prediction
// follows the depth/(depth+1) pipeline model.
#include <gtest/gtest.h>

#include <string>

#include "core/scheme.hpp"

namespace das::core {
namespace {

SchemeRunOptions mini_options(Scheme scheme) {
  SchemeRunOptions o;
  o.scheme = scheme;
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 128ULL << 20;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width =
      static_cast<std::uint32_t>(o.workload.strip_size / 4) - 1;
  o.cluster.storage_nodes = 4;
  o.cluster.compute_nodes = 4;
  o.cluster.job_startup = 0;
  return o;
}

// Mini A8: repeated NAS passes against a warm strip cache.
TEST(AuditIntegrationTest, CachedNasRunReportsHitRateResidual) {
  SchemeRunOptions o = mini_options(Scheme::kNAS);
  o.repeat_count = 3;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 64ULL << 20;
  const RunReport r = run_scheme(o);

  ASSERT_TRUE(r.audit.valid);
  EXPECT_EQ(r.audit.action, "static-offload");
  EXPECT_EQ(r.audit.repeats, 3U);
  EXPECT_EQ(r.audit.cache_capacity_bytes, 64ULL << 20);
  EXPECT_GT(r.audit.predicted_halo_bytes, 0U);
  EXPECT_GT(r.audit.observed_halo_bytes, 0.0);
  EXPECT_GE(r.audit.predicted_cache_hit_rate, 0.0);
  EXPECT_LE(r.audit.predicted_cache_hit_rate, 1.0);
  EXPECT_GE(r.audit.observed_cache_hit_rate, 0.0);
  EXPECT_LE(r.audit.observed_cache_hit_rate, 1.0);
  EXPECT_GE(r.audit.observed_warm_cache_hit_rate, 0.0);
  EXPECT_LE(r.audit.observed_warm_cache_hit_rate, 1.0);
  // A 64 MiB cache holds the whole halo: warm passes hit every lookup.
  EXPECT_GT(r.audit.observed_warm_cache_hit_rate, 0.9);
  EXPECT_DOUBLE_EQ(r.audit.cache_hit_rate_residual(),
                   r.audit.observed_warm_cache_hit_rate -
                       r.audit.predicted_cache_hit_rate);
  EXPECT_DOUBLE_EQ(
      r.audit.halo_bytes_residual(),
      r.audit.observed_halo_bytes -
          static_cast<double>(r.audit.predicted_halo_bytes));
}

// Mini A9: halo prefetching on top of the cache.
TEST(AuditIntegrationTest, PrefetchedRunPredictsDepthOverDepthPlusOne) {
  SchemeRunOptions o = mini_options(Scheme::kNAS);
  o.repeat_count = 2;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 64ULL << 20;
  o.cluster.prefetch.enabled = true;
  o.cluster.prefetch.depth = 2;
  const RunReport r = run_scheme(o);

  ASSERT_TRUE(r.audit.valid);
  EXPECT_EQ(r.audit.prefetch_depth, 2U);
  EXPECT_DOUBLE_EQ(r.audit.predicted_overlap, 2.0 / 3.0);
  EXPECT_GE(r.audit.observed_overlap, 0.0);
  EXPECT_LE(r.audit.observed_overlap, 1.0);
  EXPECT_GT(r.audit.observed_overlap, 0.0);
  EXPECT_DOUBLE_EQ(r.audit.overlap_residual(),
                   r.audit.observed_overlap - r.audit.predicted_overlap);
}

TEST(AuditIntegrationTest, TsRunIsStaticNormalWithNoHalo) {
  SchemeRunOptions o = mini_options(Scheme::kTS);
  const RunReport r = run_scheme(o);
  ASSERT_TRUE(r.audit.valid);
  EXPECT_EQ(r.audit.action, "static-normal");
  EXPECT_EQ(r.audit.predicted_halo_bytes, 0U);
  EXPECT_DOUBLE_EQ(r.audit.observed_halo_bytes, 0.0);
  EXPECT_EQ(r.audit.cache_capacity_bytes, 0U);
}

TEST(AuditIntegrationTest, DasRunRecordsTheDecisionSpelling) {
  SchemeRunOptions o = mini_options(Scheme::kDAS);
  o.distribution.group_size = 16;
  o.distribution.max_capacity_overhead = 0.25;
  const RunReport r = run_scheme(o);
  ASSERT_TRUE(r.audit.valid);
  const bool known = r.audit.action == "offload" ||
                     r.audit.action == "offload-after-redistribution" ||
                     r.audit.action == "serve-normal";
  EXPECT_TRUE(known) << "unknown action spelling: " << r.audit.action;
}

TEST(AuditIntegrationTest, UncachedRunPredictsZeroHitRate) {
  SchemeRunOptions o = mini_options(Scheme::kNAS);
  const RunReport r = run_scheme(o);
  ASSERT_TRUE(r.audit.valid);
  EXPECT_DOUBLE_EQ(r.audit.predicted_cache_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.audit.observed_cache_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.audit.predicted_overlap, 0.0);
}

}  // namespace
}  // namespace das::core
