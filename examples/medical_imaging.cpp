// Medical-imaging scenario (paper §I and Table I): smooth a noisy scan with
// the 2-D Gaussian filter and clean impulse noise with the median filter,
// end to end through the Dynamic Active Storage public API
// (ActiveStorageClient), in correctness mode: real image bytes flow through
// the simulated cluster and the distributed results are compared against
// the sequential filters.
//
//   medical_imaging [--width=256] [--height=256] [--servers=4]
#include <cstdio>
#include <iostream>

#include "core/as_client.hpp"
#include "core/workload.hpp"
#include "grid/image.hpp"
#include "grid/serialize.hpp"
#include "kernels/registry.hpp"
#include "runner/args.hpp"

int main(int argc, char** argv) {
  using namespace das;

  const runner::Args args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_int("width", 256));
  const auto height = static_cast<std::uint32_t>(args.get_int("height", 256));
  const auto servers = static_cast<std::uint32_t>(args.get_int("servers", 4));
  if (const std::string u = args.unused(); !u.empty()) {
    std::cerr << "unknown flags: " << u << "\n";
    return 2;
  }

  core::ClusterConfig config;
  config.storage_nodes = servers;
  config.compute_nodes = servers;
  config.job_startup = sim::seconds(1);
  core::Cluster cluster(config);
  const kernels::KernelRegistry registry = kernels::standard_registry();

  // A synthetic scan: anatomical blobs + sensor noise.
  grid::ImageOptions image_options;
  image_options.width = width;
  image_options.height = height;
  const grid::Grid<float> scan = grid::generate_image(image_options);
  const auto scan_bytes = grid::to_bytes(scan);

  pfs::FileMeta meta;
  meta.name = "scan";
  meta.size_bytes = scan_bytes.size();
  meta.element_size = 4;
  meta.strip_size = static_cast<std::uint64_t>(width) * 4;  // 1 row per strip
  meta.raster_width = width;
  meta.raster_height = height;

  // Store the scan in the dependence-aware layout up front (r=16, halo from
  // the stencil reach = 2 strips since the 8-neighbour reach slightly
  // exceeds one row).
  core::DistributionConfig distribution;
  distribution.group_size = 16;
  distribution.max_capacity_overhead = 0.5;
  const core::DistributionPlanner planner(distribution);
  const auto offsets =
      kernels::eight_neighbor_pattern("gaussian-2d").resolve(width);
  const auto placement = planner.plan(meta, offsets, servers);
  if (!placement) {
    std::cerr << "image too small for a dependence-aware layout\n";
    return 1;
  }
  const pfs::FileId scan_file = cluster.pfs().create_file(
      meta, placement->make_layout(), &scan_bytes);
  std::printf("scan stored as %s\n",
              cluster.pfs().layout(scan_file).name().c_str());

  core::ActiveStorageClient client(cluster, registry, distribution);

  // Stage 1: Gaussian smoothing, offloaded to the storage servers.
  core::ActiveRequest gaussian;
  gaussian.input = scan_file;
  gaussian.kernel_name = "gaussian-2d";
  gaussian.pipeline_length = 2;
  gaussian.data_mode = true;
  pfs::FileId smoothed_file = pfs::kInvalidFile;
  core::SubmissionResult first;

  // Stage 2 chains in the completion callback, consuming stage 1's output.
  core::SubmissionResult second;
  bool finished = false;
  first = client.submit(gaussian, [&] {
    core::ActiveRequest median;
    median.input = first.output;
    median.kernel_name = "median-3x3";
    median.data_mode = true;
    second = client.submit(median, [&] { finished = true; });
  });
  smoothed_file = first.output;

  cluster.simulator().run();
  if (!finished) {
    std::cerr << "pipeline did not complete\n";
    return 1;
  }

  std::printf("gaussian: %s\nmedian:   %s\n",
              to_string(first.decision.action),
              to_string(second.decision.action));
  std::printf("finished at %.3f simulated seconds\n",
              sim::to_seconds(cluster.simulator().now()));

  // Validate both stages against the sequential filters.
  const auto smoothed = grid::from_bytes(
      cluster.pfs().gather_bytes(smoothed_file), width, height);
  const auto cleaned = grid::from_bytes(
      cluster.pfs().gather_bytes(second.output), width, height);
  const auto ref_smooth =
      registry.create("gaussian-2d")->run_reference(scan);
  const auto ref_clean =
      registry.create("median-3x3")->run_reference(ref_smooth);

  std::printf("gaussian output max error: %g\n",
              grid::max_abs_diff(smoothed, ref_smooth));
  std::printf("median   output max error: %g\n",
              grid::max_abs_diff(cleaned, ref_clean));
  const bool ok = smoothed == ref_smooth && cleaned == ref_clean;
  std::printf("distributed results %s the sequential reference\n",
              ok ? "match" : "DO NOT match");
  return ok ? 0 : 1;
}
