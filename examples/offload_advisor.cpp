// Offload advisor: drive the bandwidth predictor and decision engine
// directly (no simulation) for a workload you describe on the command line
// or with a Kernel Features record (the paper's §III-B text format).
//
//   offload_advisor [--gib=24] [--servers=12] [--strip-kib=1024]
//                   [--width=262143] [--pipeline=1]
//                   [--pattern=8-neighbor|4-neighbor]
//                   [--stride=<elements>]        (overrides --pattern)
//                   [--features-file=<path> --op=<name>]  (overrides both:
//                    read a Kernel Features catalog in the paper's text
//                    format and analyze the named operator)
//
// Prints the per-element bandwidth cost (Eq. 5), the literal Eq.-17 check,
// the traffic forecast under round-robin and under the planned DAS layout,
// and the decision the Active Storage Client would take.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/decision.hpp"
#include "kernels/catalog.hpp"
#include "kernels/features.hpp"
#include "runner/args.hpp"

int main(int argc, char** argv) {
  using namespace das;

  const runner::Args args(argc, argv);
  const auto gib = static_cast<std::uint64_t>(args.get_int("gib", 24));
  const auto servers =
      static_cast<std::uint32_t>(args.get_int("servers", 12));
  const auto strip =
      static_cast<std::uint64_t>(args.get_int("strip-kib", 1024)) << 10;
  const auto width = static_cast<std::uint32_t>(
      args.get_int("width", static_cast<std::int64_t>(strip / 4) - 1));
  const auto pipeline =
      static_cast<std::uint32_t>(args.get_int("pipeline", 1));
  const std::string pattern = args.get("pattern", "8-neighbor");
  const std::int64_t stride = args.get_int("stride", 0);
  const std::string features_file = args.get("features-file", "");
  const std::string op = args.get("op", "");
  if (const std::string u = args.unused(); !u.empty()) {
    std::cerr << "unknown flags: " << u << "\n";
    return 2;
  }

  kernels::KernelFeatures features;
  if (!features_file.empty()) {
    std::ifstream in(features_file);
    if (!in) {
      std::cerr << "cannot read " << features_file << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto catalog = kernels::FeaturesCatalog::from_text(text.str());
    const auto record = catalog.lookup(op);
    if (!record) {
      std::cerr << "operator '" << op << "' not in " << features_file
                << " (records: " << catalog.size() << ")\n";
      return 1;
    }
    features = *record;
  } else if (stride != 0) {
    features.name = "custom-stride";
    features.dependence = {kernels::SymbolicOffset{0, -stride},
                           kernels::SymbolicOffset{0, stride}};
  } else if (pattern == "4-neighbor") {
    features = kernels::four_neighbor_pattern("advisor-op");
  } else {
    features = kernels::eight_neighbor_pattern("advisor-op");
  }

  pfs::FileMeta meta;
  meta.name = "dataset";
  meta.size_bytes = gib << 30;
  meta.element_size = 4;
  meta.strip_size = strip;
  meta.raster_width = width;
  meta.raster_height = static_cast<std::uint32_t>(
      meta.size_bytes / (static_cast<std::uint64_t>(width) * 4));

  std::printf("Kernel Features record under analysis:\n%s\n",
              features.format().c_str());

  const auto offsets = features.resolve(width);
  const core::PlacementSpec round_robin{servers, 1, 0};

  std::printf("file: %llu GiB, %u servers, %llu KiB strips, width %u\n\n",
              static_cast<unsigned long long>(gib), servers,
              static_cast<unsigned long long>(strip >> 10), width);

  const double bwcost =
      core::bwcost_per_element(offsets, 4, strip, round_robin);
  std::printf("Eq. 5 bandwidth cost per element (round-robin): %.3f B\n",
              bwcost);

  const std::uint64_t reach =
      core::required_halo_strips(offsets, 4, strip);
  std::printf("dependence reach: %llu strip(s) of halo per side\n",
              static_cast<unsigned long long>(reach));
  if (stride != 0) {
    const bool eq17 =
        core::paper_locality_criterion(stride, 4, strip, 1, servers);
    std::printf("paper Eq. 17 on round-robin: %s\n",
                eq17 ? "local" : "not local");
  }

  const auto rr_forecast =
      core::forecast_traffic(meta, offsets, round_robin, meta.size_bytes);
  std::printf("\nround-robin forecast: offload moves %.2f GiB "
              "(vs %.2f GiB critical-path for normal I/O) -> %s\n",
              static_cast<double>(rr_forecast.active_total_bytes()) /
                  (1 << 30),
              static_cast<double>(rr_forecast.normal_critical_bytes) /
                  (1 << 30),
              rr_forecast.offload_beneficial() ? "offload" : "reject");

  const core::DistributionConfig distribution;
  const core::DecisionEngine engine(distribution);
  const auto layout = round_robin.make_layout();
  const core::Decision decision =
      engine.decide(meta, *layout, features, meta.size_bytes, pipeline);

  std::printf("\ndecision (pipeline depth %u): %s\n", pipeline,
              to_string(decision.action));
  if (decision.target) {
    std::printf("planned layout: r=%llu, halo=%llu (capacity overhead "
                "%.1f%%), re-layout moves %.2f GiB\n",
                static_cast<unsigned long long>(decision.target->group_size),
                static_cast<unsigned long long>(decision.target->halo),
                200.0 * static_cast<double>(decision.target->halo) /
                    static_cast<double>(decision.target->group_size),
                static_cast<double>(decision.redistribution_bytes) /
                    (1 << 30));
  }
  std::printf("rationale: %s\n", decision.rationale.c_str());
  return 0;
}
