// Terrain-analysis pipeline (the paper's motivating GIS scenario, §I):
// flow-routing followed by flow-accumulation over a synthetic DEM.
//
// Demonstrates the successive-operation argument: the routing output stays
// on the storage servers in the dependence-aware layout, so accumulation
// starts with its halos already local. The example runs the pipeline under
// all three schemes and also validates the distributed flow-accumulation
// algorithm against the sequential reference on a small DEM.
//
//   terrain_analysis [--gib=12] [--nodes=24] [--depth=2] [--verify=true]
#include <cstdio>
#include <iostream>

#include "core/scheme.hpp"
#include "grid/dem.hpp"
#include "kernels/flow_accumulation.hpp"
#include "kernels/flow_routing.hpp"
#include "runner/args.hpp"
#include "runner/paper.hpp"

namespace {

void verify_distributed_accumulation() {
  using namespace das;
  grid::DemOptions opt;
  opt.width = 96;
  opt.height = 96;
  const auto dem = grid::generate_dem(opt);
  const auto dirs = kernels::FlowRoutingKernel{}.run_reference(dem);
  const auto reference = kernels::FlowAccumulationKernel{}.run_reference(dirs);

  const std::vector<std::uint32_t> slabs{0, 24, 48, 72};
  const auto distributed = kernels::distributed_flow_accumulation(dirs, slabs);
  const bool exact = distributed.accumulation == reference;
  std::printf(
      "distributed flow-accumulation over %zu slabs: %s after %u "
      "boundary-exchange rounds\n\n",
      slabs.size(), exact ? "exact" : "MISMATCH", distributed.rounds);
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;

  const das::runner::Args args(argc, argv);
  const auto gib = static_cast<std::uint64_t>(args.get_int("gib", 12));
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 24));
  const auto depth = static_cast<std::uint32_t>(args.get_int("depth", 2));
  const bool verify = args.get_bool("verify", true);
  if (const std::string u = args.unused(); !u.empty()) {
    std::cerr << "unknown flags: " << u << "\n";
    return 2;
  }

  std::printf("Terrain analysis: flow-routing -> flow-accumulation");
  for (std::uint32_t i = 2; i < depth; ++i) std::printf(" -> accumulation");
  std::printf(" over %llu GiB on %u nodes\n\n",
              static_cast<unsigned long long>(gib), nodes);

  if (verify) verify_distributed_accumulation();

  std::vector<std::string> chain{"flow-routing"};
  for (std::uint32_t i = 1; i < depth; ++i) {
    chain.push_back("flow-accumulation");
  }

  for (const Scheme scheme : {Scheme::kTS, Scheme::kNAS, Scheme::kDAS}) {
    das::core::SchemeRunOptions o;
    o.scheme = scheme;
    o.workload = das::runner::paper_workload("flow-routing", gib);
    o.cluster = das::runner::paper_cluster(nodes);
    const auto reports = das::core::run_pipeline(o, chain);

    std::printf("--- %s pipeline ---\n", to_string(scheme));
    std::cout << das::core::format_report_table(reports);
    const RunReport& total = reports.back();
    std::printf("total: %.2f s end to end, %.1f MiB/s sustained\n\n",
                total.exec_seconds,
                total.sustained_bandwidth_bps() / (1 << 20));
  }
  return 0;
}
