// Quickstart: run the paper's three schemes (TS, NAS, DAS) on one kernel
// and print the resulting execution times, traffic split and the DAS
// offload decision.
//
//   quickstart [--kernel=flow-routing] [--gib=6] [--nodes=8]
//
// TS ships the data to the compute nodes; NAS offloads onto round-robin
// striping and drowns in dependence traffic; DAS offloads onto the
// dependence-aware replicated layout. Expect DAS < TS < NAS.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/metrics.hpp"
#include "core/scheme.hpp"
#include "runner/args.hpp"
#include "runner/paper.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;

  const das::runner::Args args(argc, argv);
  const std::string kernel = args.get("kernel", "flow-routing");
  const auto gib = static_cast<std::uint64_t>(args.get_int("gib", 6));
  const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 8));
  if (const std::string u = args.unused(); !u.empty()) {
    std::cerr << "unknown flags: " << u << "\n";
    return 2;
  }

  std::printf("Dynamic Active Storage quickstart: %s over %llu GiB on %u "
              "nodes (%u storage + %u compute)\n\n",
              kernel.c_str(), static_cast<unsigned long long>(gib), nodes,
              nodes / 2, nodes / 2);

  std::vector<RunReport> reports;
  for (const Scheme scheme : {Scheme::kNAS, Scheme::kDAS, Scheme::kTS}) {
    reports.push_back(das::runner::run_cell(scheme, kernel, gib, nodes));
  }
  std::cout << das::core::format_report_table(reports);

  const RunReport& nas = reports[0];
  const RunReport& das_r = reports[1];
  const RunReport& ts = reports[2];
  std::printf("\nDAS vs TS : %5.1f%% faster (paper: over 30%%)\n",
              100.0 * (1.0 - das_r.exec_seconds / ts.exec_seconds));
  std::printf("DAS vs NAS: %5.1f%% faster (paper: over 60%%)\n",
              100.0 * (1.0 - das_r.exec_seconds / nas.exec_seconds));
  std::printf("\nDAS decision: %s\n", das_r.decision_note.c_str());
  return 0;
}
