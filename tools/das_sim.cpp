// das_sim — command-line driver for the simulator.
//
// Runs any (scheme, kernel, size, cluster) combination with full control
// over the model parameters, optionally repeating trials under disk jitter
// and reporting mean +- stddev, and optionally emitting CSV for plotting.
//
//   das_sim [--scheme=all|TS|NAS|DAS] [--kernel=all|<name>]
//           [--gib=24] [--nodes=24] [--trials=1] [--csv]
//           [--strip-kib=1024] [--group=16] [--budget=0.25]
//           [--pipeline=1] [--window=4] [--pre-distributed=true] [--repeats=1]
//           [--cache-mib=0] [--cache-policy=lru]
//           [--prefetch=on|off] [--prefetch-depth=0]
//           [--nic-mibps=110] [--disk-mibps=700] [--compute-mibps=450]
//           [--startup-s=12] [--jitter=0] [--stragglers=0] [--slowdown=1]
//           [--trace=FILE] [--audit=FILE] [--log-level=LEVEL]
//
// --trace=FILE writes a Chrome trace-event / Perfetto-loadable JSON
// timeline of every NIC, disk, compute, cache and prefetch event. Multiple
// runs in one invocation share the buffer and each restarts simulated time
// at zero, so the flag is most useful with a single scheme/kernel/trial.
// --audit=FILE writes one predicted-vs-observed decision-audit CSV row per
// run. --log-level=trace|debug|info|warn|error|off sets the global logger.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "core/scheme.hpp"
#include "kernels/registry.hpp"
#include "runner/args.hpp"
#include "runner/paper.hpp"
#include "simkit/log.hpp"
#include "simkit/trace.hpp"

namespace {

std::vector<das::core::Scheme> parse_schemes(const std::string& arg) {
  using das::core::Scheme;
  if (arg == "all") return {Scheme::kNAS, Scheme::kDAS, Scheme::kTS};
  if (arg == "TS" || arg == "ts") return {Scheme::kTS};
  if (arg == "NAS" || arg == "nas") return {Scheme::kNAS};
  if (arg == "DAS" || arg == "das") return {Scheme::kDAS};
  throw std::invalid_argument("unknown scheme: " + arg);
}

std::vector<std::string> parse_kernels(const std::string& arg) {
  const auto registry = das::kernels::standard_registry();
  if (arg == "all") return registry.names();
  if (!registry.contains(arg)) {
    throw std::invalid_argument("unknown kernel: " + arg);
  }
  return {arg};
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;

  try {
    const das::runner::Args args(argc, argv);
    const auto schemes = parse_schemes(args.get("scheme", "all"));
    const auto kernels = parse_kernels(args.get("kernel", "flow-routing"));
    const auto gib = static_cast<std::uint64_t>(args.get_int("gib", 24));
    const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 24));
    const auto trials = static_cast<std::uint32_t>(args.get_int("trials", 1));
    const bool csv = args.get_bool("csv", false);

    das::core::SchemeRunOptions base;
    base.workload.data_bytes = gib << 30;
    base.workload.strip_size =
        static_cast<std::uint64_t>(args.get_int("strip-kib", 1024)) << 10;
    base.workload.raster_width = static_cast<std::uint32_t>(
        base.workload.strip_size / base.workload.element_size - 1);
    base.cluster = das::runner::paper_cluster(nodes);
    base.cluster.nic_bandwidth_bps =
        static_cast<double>(args.get_int("nic-mibps", 110)) * 1024 * 1024;
    base.cluster.disk_bandwidth_bps =
        static_cast<double>(args.get_int("disk-mibps", 700)) * 1024 * 1024;
    base.cluster.compute_rate_bps =
        static_cast<double>(args.get_int("compute-mibps", 450)) * 1024 * 1024;
    base.cluster.job_startup =
        das::sim::seconds(args.get_int("startup-s", 12));
    base.cluster.disk_jitter =
        static_cast<double>(args.get_int("jitter-pct", 0)) / 100.0;
    base.cluster.straggler_count =
        static_cast<std::uint32_t>(args.get_int("stragglers", 0));
    base.cluster.straggler_slowdown =
        static_cast<double>(args.get_int("slowdown", 1));
    base.distribution.group_size =
        static_cast<std::uint64_t>(args.get_int("group", 16));
    base.distribution.max_capacity_overhead =
        static_cast<double>(args.get_int("budget-pct", 25)) / 100.0;
    base.pipeline_length =
        static_cast<std::uint32_t>(args.get_int("pipeline", 1));
    base.cluster.pipeline_window = static_cast<std::uint32_t>(
        args.get_int("window", base.cluster.pipeline_window));
    base.pre_distributed = args.get_bool("pre-distributed", true);
    base.repeat_count =
        static_cast<std::uint32_t>(args.get_int("repeats", 1));
    // Server-side strip cache: off unless a capacity is given.
    const auto cache_mib =
        static_cast<std::uint64_t>(args.get_int("cache-mib", 0));
    base.cluster.server_cache.enabled = cache_mib > 0;
    base.cluster.server_cache.capacity_bytes = cache_mib << 20;
    base.cluster.server_cache.policy = args.get("cache-policy", "lru");
    // Halo prefetch: off unless a depth is given; --prefetch=off forces the
    // PR-1 demand-fetch path bit for bit regardless of depth.
    const bool prefetch_on = args.get_bool("prefetch", true);
    const auto prefetch_depth =
        static_cast<std::uint32_t>(args.get_int("prefetch-depth", 0));
    base.cluster.prefetch.enabled = prefetch_on && prefetch_depth > 0;
    base.cluster.prefetch.depth = prefetch_depth;
    if (base.cluster.prefetch.active() &&
        !base.cluster.server_cache.active()) {
      throw std::invalid_argument(
          "--prefetch-depth requires --cache-mib > 0 (prefetched strips land "
          "in the server strip cache)");
    }
    const std::string trace_path = args.get("trace", "");
    const std::string audit_path = args.get("audit", "");
    if (const std::string level = args.get("log-level", ""); !level.empty()) {
      const auto parsed = das::sim::log_level_from_string(level);
      if (!parsed) {
        throw std::invalid_argument("unknown --log-level: " + level);
      }
      das::sim::Logger::global().set_level(*parsed);
    }
    if (const std::string u = args.unused(); !u.empty()) {
      std::cerr << "unknown flags: " << u << "\n";
      return 2;
    }

    das::sim::Tracer& tracer = das::sim::Tracer::global();
    if (!trace_path.empty()) {
      tracer.clear();
      tracer.enable();
    }
    std::vector<std::string> audit_rows;

    if (csv) std::printf("%s,trial\n", das::core::report_csv_header().c_str());

    std::vector<RunReport> table;
    for (const std::string& kernel : kernels) {
      for (const das::core::Scheme scheme : schemes) {
        double sum = 0.0, sum2 = 0.0;
        RunReport last;
        for (std::uint32_t trial = 0; trial < trials; ++trial) {
          das::core::SchemeRunOptions o = base;
          o.scheme = scheme;
          o.workload.kernel_name = kernel;
          o.cluster.seed = base.cluster.seed + trial * 1000003;
          last = das::core::run_scheme(o);
          sum += last.exec_seconds;
          sum2 += last.exec_seconds * last.exec_seconds;
          if (csv) {
            std::printf("%s,%u\n", das::core::to_csv(last).c_str(), trial);
          }
          if (!audit_path.empty() && last.audit.valid) {
            audit_rows.push_back(das::core::audit_to_csv(last) + "," +
                                 std::to_string(trial));
          }
        }
        table.push_back(last);
        if (trials > 1 && !csv) {
          const double n = trials;
          const double mean = sum / n;
          const double var = std::max(0.0, sum2 / n - mean * mean);
          std::printf("%s %-18s over %u trials: %.2f +- %.2f s\n",
                      to_string(scheme), kernel.c_str(), trials, mean,
                      std::sqrt(var));
        }
      }
    }
    if (!csv) std::printf("\n%s", das::core::format_report_table(table).c_str());

    if (!trace_path.empty() && !tracer.write_json(trace_path)) {
      throw std::runtime_error("cannot write trace file: " + trace_path);
    }
    if (!audit_path.empty()) {
      std::ofstream out(audit_path, std::ios::trunc);
      if (!out) {
        throw std::runtime_error("cannot write audit file: " + audit_path);
      }
      out << das::core::audit_csv_header() << ",trial\n";
      for (const std::string& row : audit_rows) out << row << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "das_sim: " << error.what() << "\n";
    return 2;
  }
}
