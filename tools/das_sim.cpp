// das_sim — command-line driver for the simulator.
//
// Runs any (scheme, kernel, size, cluster) combination with full control
// over the model parameters, optionally repeating trials under disk jitter
// and reporting mean +- stddev, and optionally emitting CSV for plotting.
//
//   das_sim [--scheme=all|TS|NAS|DAS] [--kernel=all|<name>]
//           [--gib=24] [--nodes=24] [--trials=1] [--csv] [--jobs=1]
//           [--strip-kib=1024] [--group=16] [--budget=0.25]
//           [--pipeline=1] [--window=4] [--pre-distributed=true] [--repeats=1]
//           [--cache-mib=0] [--cache-policy=lru]
//           [--prefetch=on|off] [--prefetch-depth=0]
//           [--migrate=off] [--migrate-threshold=4.0]
//           [--nic-mibps=110] [--disk-mibps=700] [--compute-mibps=450]
//           [--startup-s=12] [--jitter=0] [--stragglers=0] [--slowdown=1]
//           [--trace=FILE] [--audit=FILE] [--log-level=LEVEL]
//           [--tenants=1] [--arrival-rate=1.0] [--tenant-jobs=8]
//           [--job-mib=16] [--datasets=1] [--replicas=2]
//           [--admission-mib=0] [--fair-queue=off] [--weights=1,...]
//           [--hedge=off] [--reroute=off] [--trace-file=FILE] [--slo=FILE]
//           [--metrics=FILE] [--metrics-prom=FILE] [--metrics-period-ms=50]
//           [--spans=off] [--flight-record=FILE] [--diag=FILE]
//           [--slo-target-ms=0] [--slo-budget=0.01] [--slo-window-s=1]
//           [--kernel-isa=auto|scalar|sse2|avx2] [--calibrate-kernels]
//           [--kernel-cost=NAME:FACTOR,...]
//           [--access=strided:K|column|trace:FILE] [--span-sample=N]
//
// Sparse access (--access, src/core/list_access.hpp): instead of the full
// raster sweep, read only every K-th row (strided:K), the middle column
// (column), or the "offset length" runs of a trace file — each fetched run
// padded with the kernel's stencil halo — through the list-I/O request
// plane (pfs/region.hpp, DESIGN §15). TS then moves only runs + list
// headers over the wire (client_server_bytes is the bytes-moved metric);
// NAS/DAS still sweep the whole file (active storage computes every output)
// and the table gains one "list-io ..." pricing line per row showing which
// side the decision engine took. --access is semantic and joins the session
// id only when given. Under traffic mode, --access=strided:K makes every
// job fetch each strip's every-K-th 4 KiB row unit as one list request.
//
// --compute-mibps=auto runs the kernel calibration sweep once at startup
// and feeds the measured anchor rate plus per-kernel cost factors into the
// cluster (explicit --kernel-cost entries still win); the session id hashes
// the *resolved* values, so runs calibrated on different machines do not
// collide. --span-sample=N tracks 1 of every N request spans, chosen by a
// deterministic hash of the span mint counter (the same subset for any
// --jobs); multiply span hop totals by N to estimate whole-run attribution.
// The flag implies --spans and, being observational, never joins the
// session id.
//
// Vectorized kernel engine (src/kernels/simd.hpp): --kernel-isa pins the
// data-mode kernels to a narrower instruction set than the CPU supports
// (auto = widest detected; requesting an unsupported ISA is an error). Every
// ISA produces bit-identical outputs, so the flag changes wall-clock time
// only and is excluded from the session id. --calibrate-kernels measures the
// kernels' real cells/sec on this machine under the active ISA, prints the
// recommended --compute-mibps and --kernel-cost values, and exits.
// --kernel-cost overrides the per-kernel compute cost factors the simulated
// compute engines charge (unlisted kernels keep their built-in guess); it is
// semantic and joins the session id only when given.
//
// --jobs=N runs the sweep's independent (kernel, scheme, trial) cells on N
// worker threads; --jobs=0 means one worker per hardware thread
// (runner::default_jobs(), the same mapping the bench binaries use). Every
// cell simulates in its own run context, and all output is printed after
// the sweep in cell order, so stdout, CSV, trace and audit files are
// byte-identical for any N.
//
// Traffic mode (multi-tenant open-loop workload, src/traffic/) engages when
// --tenants > 1, a --trace-file is given, or any traffic feature
// (--admission-mib/--fair-queue/--hedge/--reroute) is enabled. N tenants
// then submit Poisson (--arrival-rate jobs/s each, --tenant-jobs each,
// --job-mib per job) or trace-replayed jobs against one shared cluster, and
// the per-tenant SLO table (p50/p95/p99 sojourn/service) goes to --slo=FILE
// or stdout. --tenants=1 with every feature off deliberately routes through
// the classic sweep path above, so the single-tenant system is byte-for-byte
// the pre-traffic simulator (like --prefetch=off).
// --trace=FILE writes a Chrome trace-event / Perfetto-loadable JSON
// timeline of every NIC, disk, compute, cache and prefetch event. Multiple
// runs in one invocation merge into one buffer and each restarts simulated
// time at zero, so the flag is most useful with a single
// scheme/kernel/trial. --audit=FILE writes one predicted-vs-observed
// decision-audit CSV row per run.
// --log-level=trace|debug|info|warn|error|off sets every run's logger.
//
// Telemetry plane (src/telemetry/): --metrics samples every enrolled counter
// /gauge/histogram into a columnar CSV time series, --metrics-prom writes a
// Prometheus text exposition of the final values, --spans tracks causal
// request spans (per-hop critical-path attribution in the report table),
// --slo-target-ms arms the per-tenant burn-rate monitor, and
// --flight-record dumps the span flight-recorder ring captured at each SLO
// alert. --diag writes a small JSON sidecar (wall seconds, event count) for
// CI trending. Every output — trace, audit, SLO table, metrics, diag — is
// stamped with one session id hashed from the run's semantic configuration
// (never --jobs, output paths, or the telemetry flags themselves), so all
// artifacts of one experiment join on one key. With every telemetry flag
// off, outputs are byte-identical to a binary that never heard of them.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "core/scheme.hpp"
#include "kernels/calibrate.hpp"
#include "kernels/registry.hpp"
#include "kernels/simd.hpp"
#include "runner/args.hpp"
#include "runner/paper.hpp"
#include "runner/sweep.hpp"
#include "simkit/context.hpp"
#include "simkit/log.hpp"
#include "simkit/trace.hpp"
#include "telemetry/plane.hpp"
#include "traffic/engine.hpp"

namespace {

std::vector<das::core::Scheme> parse_schemes(const std::string& arg) {
  using das::core::Scheme;
  if (arg == "all") return {Scheme::kNAS, Scheme::kDAS, Scheme::kTS};
  if (arg == "TS" || arg == "ts") return {Scheme::kTS};
  if (arg == "NAS" || arg == "nas") return {Scheme::kNAS};
  if (arg == "DAS" || arg == "das") return {Scheme::kDAS};
  throw std::invalid_argument("unknown scheme: " + arg);
}

std::vector<std::string> parse_kernels(const std::string& arg) {
  const auto registry = das::kernels::standard_registry();
  if (arg == "all") return registry.names();
  if (!registry.contains(arg)) {
    throw std::invalid_argument("unknown kernel: " + arg);
  }
  return {arg};
}

/// Parse --kernel-cost="name:factor,name:factor,..." into the cost model.
das::core::ComputeCostModel parse_kernel_cost(const std::string& arg) {
  das::core::ComputeCostModel model;
  if (arg.empty()) return model;
  const auto registry = das::kernels::standard_registry();
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = std::min(arg.find(',', pos), arg.size());
    const std::string entry = arg.substr(pos, comma - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      throw std::invalid_argument(
          "bad --kernel-cost entry (want name:factor): " + entry);
    }
    const std::string name = entry.substr(0, colon);
    if (!registry.contains(name)) {
      throw std::invalid_argument("unknown kernel in --kernel-cost: " + name);
    }
    std::size_t used = 0;
    double factor = 0.0;
    try {
      factor = std::stod(entry.substr(colon + 1), &used);
    } catch (const std::exception&) {
      used = 0;  // non-numeric: fall through to the contextual error below
    }
    if (used != entry.size() - colon - 1 || !(factor > 0.0)) {
      throw std::invalid_argument("bad --kernel-cost factor for " + name +
                                  ": " + entry.substr(colon + 1));
    }
    model.kernel_cost_factor[name] = factor;
    pos = comma + 1;
  }
  return model;
}

/// Canonical configuration string the session id is hashed from: every flag
/// that shapes simulated behaviour, in fixed order, as given on the command
/// line (absent flags contribute their empty default). Worker count, output
/// file paths, and the telemetry switches are deliberately excluded, so one
/// experiment keeps one session id across --jobs settings and across
/// telemetry on/off reruns.
std::string canonical_config(const das::runner::Args& args) {
  static const char* const kSemantic[] = {
      "scheme",        "kernel",          "gib",
      "nodes",         "trials",          "strip-kib",
      "nic-mibps",     "disk-mibps",      "compute-mibps",
      "startup-s",     "jitter-pct",      "stragglers",
      "slowdown",      "group",           "budget-pct",
      "pipeline",      "window",          "pre-distributed",
      "repeats",       "cache-mib",       "cache-policy",
      "prefetch",      "prefetch-depth",  "migrate",
      "migrate-threshold", "tenants",     "tenant-jobs",
      "arrival-rate",  "job-mib",         "datasets",
      "replicas",      "admission-mib",   "fair-queue",
      "weights",       "hedge",           "reroute",
      "trace-file"};
  std::string out;
  for (const char* name : kSemantic) {
    out += name;
    out += '=';
    out += args.get(name, "");
    out += ';';
  }
  // Appended only when given, so every pre-existing configuration keeps the
  // session id it had before the flag existed. (--kernel-isa is deliberately
  // absent: all ISAs produce bit-identical outputs; --span-sample is absent
  // because sampling is observational — it changes which spans are tracked,
  // never the simulated byte flows.)
  if (const std::string kc = args.get("kernel-cost", ""); !kc.empty()) {
    out += "kernel-cost=";
    out += kc;
    out += ';';
  }
  if (const std::string ac = args.get("access", ""); !ac.empty()) {
    out += "access=";
    out += ac;
    out += ';';
  }
  return out;
}

void write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    throw std::runtime_error(std::string("cannot write ") + what + " file: " +
                             path);
  }
  out << content;
}

/// The --diag sidecar: host-side run cost for CI trending, keyed by session.
std::string diag_json(std::uint64_t session, double wall_seconds,
                      std::uint64_t sim_events) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"session\": \"%s\", \"wall_seconds\": %.6f, "
                "\"sim_events\": %llu}\n",
                das::telemetry::session_hex(session).c_str(), wall_seconds,
                static_cast<unsigned long long>(sim_events));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;

  try {
    const das::runner::Args args(argc, argv);

    // ISA pinning first: it also governs --calibrate-kernels below.
    if (const std::string isa = args.get("kernel-isa", "");
        !isa.empty() && isa != "auto") {
      const auto parsed = das::kernels::simd::isa_from_string(isa);
      if (!parsed) {
        throw std::invalid_argument("unknown --kernel-isa: " + isa +
                                    " (want auto, scalar, sse2 or avx2)");
      }
      das::kernels::simd::set_isa_override(*parsed);
    }
    if (args.get_bool("calibrate-kernels", false)) {
      const auto report = das::kernels::calibrate_kernels();
      std::fputs(report.format().c_str(), stdout);
      return 0;
    }

    const auto schemes = parse_schemes(args.get("scheme", "all"));
    const auto kernels = parse_kernels(args.get("kernel", "flow-routing"));
    const auto gib = static_cast<std::uint64_t>(args.get_int("gib", 24));
    const auto nodes = static_cast<std::uint32_t>(args.get_int("nodes", 24));
    const auto trials = static_cast<std::uint32_t>(args.get_int("trials", 1));
    const bool csv = args.get_bool("csv", false);

    das::core::SchemeRunOptions base;
    base.workload.data_bytes = gib << 30;
    base.workload.strip_size =
        static_cast<std::uint64_t>(args.get_int("strip-kib", 1024)) << 10;
    base.workload.raster_width = static_cast<std::uint32_t>(
        base.workload.strip_size / base.workload.element_size - 1);
    base.cluster = das::runner::paper_cluster(nodes);
    base.cluster.nic_bandwidth_bps =
        static_cast<double>(args.get_int("nic-mibps", 110)) * 1024 * 1024;
    base.cluster.disk_bandwidth_bps =
        static_cast<double>(args.get_int("disk-mibps", 700)) * 1024 * 1024;
    // --compute-mibps=auto runs the kernel calibration sweep once and feeds
    // the measured anchor rate (and, below, the measured per-kernel cost
    // factors) into the cluster, so the scheme decisions rest on this
    // machine's real compute throughput. The resolved values join the
    // session id (see below): two hosts calibrating differently are two
    // different experiments.
    std::optional<das::kernels::CalibrationReport> calibrated;
    if (args.get("compute-mibps", "") == "auto") {
      calibrated = das::kernels::calibrate_kernels();
      base.cluster.compute_rate_bps = calibrated->anchor_mibps * 1024 * 1024;
    } else {
      base.cluster.compute_rate_bps =
          static_cast<double>(args.get_int("compute-mibps", 450)) * 1024 *
          1024;
    }
    base.cluster.job_startup =
        das::sim::seconds(args.get_int("startup-s", 12));
    base.cluster.disk_jitter =
        static_cast<double>(args.get_int("jitter-pct", 0)) / 100.0;
    base.cluster.straggler_count =
        static_cast<std::uint32_t>(args.get_int("stragglers", 0));
    base.cluster.straggler_slowdown =
        static_cast<double>(args.get_int("slowdown", 1));
    base.distribution.group_size =
        static_cast<std::uint64_t>(args.get_int("group", 16));
    base.distribution.max_capacity_overhead =
        static_cast<double>(args.get_int("budget-pct", 25)) / 100.0;
    base.pipeline_length =
        static_cast<std::uint32_t>(args.get_int("pipeline", 1));
    base.cluster.pipeline_window = static_cast<std::uint32_t>(
        args.get_int("window", base.cluster.pipeline_window));
    base.pre_distributed = args.get_bool("pre-distributed", true);
    base.repeat_count =
        static_cast<std::uint32_t>(args.get_int("repeats", 1));
    // Server-side strip cache: off unless a capacity is given.
    const auto cache_mib =
        static_cast<std::uint64_t>(args.get_int("cache-mib", 0));
    base.cluster.server_cache.enabled = cache_mib > 0;
    base.cluster.server_cache.capacity_bytes = cache_mib << 20;
    base.cluster.server_cache.policy = args.get("cache-policy", "lru");
    // Halo prefetch: off unless a depth is given; --prefetch=off forces the
    // PR-1 demand-fetch path bit for bit regardless of depth.
    const bool prefetch_on = args.get_bool("prefetch", true);
    const auto prefetch_depth =
        static_cast<std::uint32_t>(args.get_int("prefetch-depth", 0));
    base.cluster.prefetch.enabled = prefetch_on && prefetch_depth > 0;
    base.cluster.prefetch.depth = prefetch_depth;
    if (base.cluster.prefetch.active() &&
        !base.cluster.server_cache.active()) {
      throw std::invalid_argument(
          "--prefetch-depth requires --cache-mib > 0 (prefetched strips land "
          "in the server strip cache)");
    }
    // Online layout migration (NAS repeated passes): off by default, so the
    // classic byte flows reproduce the migration-free system exactly.
    base.migration.enabled = args.get_bool("migrate", false);
    base.migration.divergence_threshold =
        args.get_double("migrate-threshold",
                        base.migration.divergence_threshold);
    // Calibrated per-kernel compute cost factors (--calibrate-kernels
    // prints a ready-made value). Empty = kernel defaults, bit for bit.
    // Under --compute-mibps=auto the calibration's factors fill in every
    // kernel an explicit --kernel-cost entry did not pin.
    base.cluster.compute_cost = parse_kernel_cost(args.get("kernel-cost", ""));
    if (calibrated) {
      for (const auto& k : calibrated->kernels) {
        base.cluster.compute_cost.kernel_cost_factor.try_emplace(
            k.name, k.cost_factor);
      }
    }
    const std::string trace_path = args.get("trace", "");
    const std::string audit_path = args.get("audit", "");
    std::optional<das::sim::LogLevel> log_level;
    if (const std::string level = args.get("log-level", ""); !level.empty()) {
      log_level = das::sim::log_level_from_string(level);
      if (!log_level) {
        throw std::invalid_argument("unknown --log-level: " + level);
      }
    }
    auto jobs = static_cast<unsigned>(args.get_int("jobs", 1));
    if (jobs == 0) jobs = das::runner::default_jobs();

    // Sparse list-I/O access (--access=strided:K|column|trace:FILE): the
    // classic sweep serves it through run_list_scheme (TS fetches only the
    // runs, other schemes price the list but sweep in full); traffic mode
    // supports the strided pattern on every job's strip reads.
    das::core::AccessSpec access;
    if (const std::string a = args.get("access", ""); !a.empty()) {
      access = das::core::AccessSpec::parse(a);
    }

    // Traffic mode (see header comment). All its flags are parsed here —
    // before the unknown-flag check — whether or not the mode engages.
    das::traffic::TrafficConfig traffic;
    traffic.cluster = base.cluster;
    traffic.arrivals.tenants =
        static_cast<std::uint32_t>(args.get_int("tenants", 1));
    traffic.arrivals.jobs_per_tenant =
        static_cast<std::uint32_t>(args.get_int("tenant-jobs", 8));
    traffic.arrivals.rate_hz = args.get_double("arrival-rate", 1.0);
    traffic.arrivals.job_bytes =
        static_cast<std::uint64_t>(args.get_int("job-mib", 16)) << 20;
    traffic.arrivals.strip_bytes = base.workload.strip_size;
    traffic.arrivals.datasets =
        static_cast<std::uint32_t>(args.get_int("datasets", 1));
    traffic.arrivals.dataset_strips = std::max<std::uint64_t>(
        1, (gib << 30) / base.workload.strip_size /
               std::max(1u, traffic.arrivals.datasets));
    traffic.arrivals.seed = base.cluster.seed;
    traffic.trace_file = args.get("trace-file", "");
    traffic.replication =
        static_cast<std::uint32_t>(args.get_int("replicas", 2));
    const auto admission_mib =
        static_cast<std::uint64_t>(args.get_int("admission-mib", 0));
    traffic.admission.enabled = admission_mib > 0;
    traffic.admission.capacity_bytes = admission_mib << 20;
    traffic.fair_queue = args.get_bool("fair-queue", false);
    if (const std::string w = args.get("weights", ""); !w.empty()) {
      for (std::size_t pos = 0; pos < w.size();) {
        const std::size_t comma = std::min(w.find(',', pos), w.size());
        traffic.weights.push_back(std::stod(w.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    }
    traffic.straggler.hedge = args.get_bool("hedge", false);
    traffic.straggler.reroute = args.get_bool("reroute", false);
    if (access.mode == das::core::AccessSpec::Mode::kStrided) {
      traffic.access_stride = access.stride;
    }
    const std::string slo_path = args.get("slo", "");
    const bool traffic_mode =
        traffic.arrivals.tenants > 1 || !traffic.trace_file.empty() ||
        traffic.admission.enabled || traffic.fair_queue ||
        traffic.straggler.active();

    // Telemetry plane flags (see header comment). The session id is minted
    // unconditionally: every run stamps its SLO/audit rows and traces so
    // artifacts join even when no telemetry output file was requested.
    const std::string metrics_path = args.get("metrics", "");
    const std::string metrics_prom_path = args.get("metrics-prom", "");
    const auto metrics_period_ms = args.get_int("metrics-period-ms", 50);
    if (metrics_period_ms <= 0) {
      throw std::invalid_argument("--metrics-period-ms must be > 0");
    }
    const bool spans_on = args.get_bool("spans", false);
    // --span-sample=N tracks 1-in-N requests (deterministic hash of the
    // span mint counter, so the subset is stable across --jobs); hop totals
    // then represent ~1/N of the traffic. Giving the flag implies --spans.
    const auto span_sample = args.get_int("span-sample", 1);
    if (span_sample < 1) {
      throw std::invalid_argument("--span-sample must be >= 1");
    }
    const std::string flight_path = args.get("flight-record", "");
    const double slo_target_ms = args.get_double("slo-target-ms", 0.0);
    const std::string diag_path = args.get("diag", "");
    das::telemetry::PlaneConfig plane_cfg;
    plane_cfg.metrics = !metrics_path.empty() || !metrics_prom_path.empty();
    plane_cfg.prometheus = !metrics_prom_path.empty();
    plane_cfg.spans = spans_on || !flight_path.empty() || span_sample > 1;
    plane_cfg.span_sample = static_cast<std::uint32_t>(span_sample);
    plane_cfg.sample_period = das::sim::milliseconds(metrics_period_ms);
    plane_cfg.slo.target_s = slo_target_ms / 1000.0;
    plane_cfg.slo.budget = args.get_double("slo-budget", 0.01);
    plane_cfg.slo.window_s = args.get_double("slo-window-s", 1.0);
    const bool plane_active = plane_cfg.metrics || plane_cfg.spans ||
                              plane_cfg.slo.target_s > 0.0;
    std::unique_ptr<das::telemetry::Plane> plane;
    if (plane_active) {
      plane = std::make_unique<das::telemetry::Plane>(plane_cfg);
    }
    // --compute-mibps=auto resolves to machine-measured rates, so the
    // session id must record what was actually simulated, not the word
    // "auto": the resolved values are appended to the canonical string.
    std::string canonical = canonical_config(args);
    if (calibrated) {
      char resolved[64];
      std::snprintf(resolved, sizeof resolved,
                    "resolved-compute-mibps=%.1f;", calibrated->anchor_mibps);
      canonical += resolved;
      canonical +=
          "resolved-kernel-cost=" + calibrated->kernel_cost_flag() + ';';
    }
    const std::uint64_t session = das::telemetry::session_hash(canonical);
    const std::string session_hex = das::telemetry::session_hex(session);

    if (const std::string u = args.unused(); !u.empty()) {
      std::cerr << "unknown flags: " << u << "\n";
      return 2;
    }

    if (traffic_mode) {
      if (access.active() &&
          access.mode != das::core::AccessSpec::Mode::kStrided) {
        throw std::invalid_argument(
            "traffic mode supports --access=strided:K only (column and "
            "trace patterns need the classic sweep's raster geometry)");
      }
      das::sim::RunContext context;
      if (!trace_path.empty()) context.tracer.enable();
      if (log_level) context.log.set_level(*log_level);
      context.telemetry = plane.get();
      context.session = session;
      context.tracer.set_session(session_hex);
      traffic.context = &context;

      const auto wall_start = std::chrono::steady_clock::now();
      const das::traffic::TrafficReport report =
          das::traffic::run_traffic(traffic);
      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();

      std::string summary;
      summary += "traffic: tenants=" +
                 std::to_string(traffic.arrivals.tenants) +
                 " jobs=" + std::to_string(report.total.jobs_completed) +
                 " makespan_s=" + std::to_string(report.makespan_s) +
                 " events=" + std::to_string(report.events) + "\n";
      summary += "straggler: reads=" + std::to_string(report.reads_issued) +
                 " reroutes=" + std::to_string(report.reroutes) +
                 " hedges=" + std::to_string(report.hedges_issued) + "/" +
                 std::to_string(report.hedges_won) +
                 " wasted_bytes=" + std::to_string(report.wasted_bytes) +
                 "\n";
      // Printed only when the monitor is armed, so an unarmed run's stdout
      // is byte-identical to a binary without the telemetry plane.
      if (plane != nullptr && plane->slo().enabled()) {
        summary += "slo: alerts=" + std::to_string(report.slo_alerts) + "\n";
      }
      std::printf("%s", summary.c_str());
      if (slo_path.empty()) {
        std::printf("%s", report.slo_csv().c_str());
      } else {
        std::ofstream out(slo_path, std::ios::trunc);
        if (!out) {
          throw std::runtime_error("cannot write SLO file: " + slo_path);
        }
        out << report.slo_csv();
      }
      if (!trace_path.empty() && !context.tracer.write_json(trace_path)) {
        throw std::runtime_error("cannot write trace file: " + trace_path);
      }
      if (!metrics_path.empty()) {
        write_file(metrics_path, plane->sampler().csv(), "metrics");
      }
      if (!metrics_prom_path.empty()) {
        write_file(metrics_prom_path, plane->prometheus_snapshot(),
                   "metrics-prom");
      }
      if (!flight_path.empty()) {
        write_file(flight_path, plane->flight_json(session), "flight-record");
      }
      if (!diag_path.empty()) {
        write_file(diag_path, diag_json(session, wall_seconds, report.events),
                   "diag");
      }
      return 0;
    }

    // One cell per (kernel, scheme, trial), in output order. Cells simulate
    // independently — possibly concurrently — and all printing happens
    // afterwards in this order, so output never depends on --jobs.
    struct Cell {
      std::string kernel;
      das::core::Scheme scheme;
      std::uint32_t trial = 0;
    };
    std::vector<Cell> cells;
    for (const std::string& kernel : kernels) {
      for (const das::core::Scheme scheme : schemes) {
        for (std::uint32_t trial = 0; trial < trials; ++trial) {
          cells.push_back(Cell{kernel, scheme, trial});
        }
      }
    }

    // The plane is one registry + sampler, so classic-mode telemetry is
    // limited to a single cell; sweeps would interleave unrelated runs into
    // one time series. (--diag aggregates and stays legal for sweeps.)
    if (plane != nullptr && cells.size() > 1) {
      throw std::invalid_argument(
          "--metrics/--spans/--slo-target-ms/--flight-record require a "
          "single (scheme, kernel, trial) cell; narrow --scheme/--kernel/"
          "--trials");
    }

    std::vector<std::unique_ptr<das::sim::RunContext>> contexts;
    contexts.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      contexts.push_back(std::make_unique<das::sim::RunContext>());
      if (!trace_path.empty()) contexts.back()->tracer.enable();
      if (log_level) contexts.back()->log.set_level(*log_level);
      contexts.back()->session = session;
    }
    if (plane != nullptr) contexts.front()->telemetry = plane.get();

    std::vector<RunReport> reports(cells.size());
    das::runner::parallel_for_indexed(
        jobs, cells.size(), [&](std::size_t i) {
          if (access.active()) {
            das::core::ListRunOptions o;
            o.scheme = cells[i].scheme;
            o.workload = base.workload;
            o.workload.kernel_name = cells[i].kernel;
            o.access = access;
            o.cluster = base.cluster;
            o.cluster.seed = base.cluster.seed + cells[i].trial * 1000003;
            o.distribution = base.distribution;
            o.context = contexts[i].get();
            reports[i] = das::core::run_list_scheme(o);
            return;
          }
          das::core::SchemeRunOptions o = base;
          o.scheme = cells[i].scheme;
          o.workload.kernel_name = cells[i].kernel;
          o.cluster.seed = base.cluster.seed + cells[i].trial * 1000003;
          o.context = contexts[i].get();
          reports[i] = das::core::run_scheme(o);
        });

    std::vector<std::string> audit_rows;
    if (csv) std::printf("%s,trial\n", das::core::report_csv_header().c_str());

    std::vector<RunReport> table;
    std::size_t cell = 0;
    for (const std::string& kernel : kernels) {
      for (const das::core::Scheme scheme : schemes) {
        double sum = 0.0, sum2 = 0.0;
        for (std::uint32_t trial = 0; trial < trials; ++trial, ++cell) {
          const RunReport& report = reports[cell];
          sum += report.exec_seconds;
          sum2 += report.exec_seconds * report.exec_seconds;
          if (csv) {
            std::printf("%s,%u\n", das::core::to_csv(report).c_str(), trial);
          }
          if (!audit_path.empty() && report.audit.valid) {
            audit_rows.push_back(das::core::audit_to_csv(report) + "," +
                                 std::to_string(trial));
          }
        }
        table.push_back(reports[cell - 1]);
        if (trials > 1 && !csv) {
          const double n = trials;
          const double mean = sum / n;
          const double var = std::max(0.0, sum2 / n - mean * mean);
          std::printf("%s %-18s over %u trials: %.2f +- %.2f s\n",
                      to_string(scheme), kernel.c_str(), trials, mean,
                      std::sqrt(var));
        }
      }
    }
    if (!csv) {
      std::printf("\n%s", das::core::format_report_table(table).c_str());
      if (access.active()) {
        // One list-I/O pricing line per table row: what the access cost as
        // a list request and why the decision engine picked its side.
        for (const RunReport& r : table) {
          std::printf("list-io %s %s %s: %s\n", r.scheme.c_str(),
                      r.kernel.c_str(), access.label().c_str(),
                      r.decision_note.c_str());
        }
      }
    }

    if (!trace_path.empty()) {
      // Merging in cell order reproduces the buffer one shared tracer would
      // have accumulated running the cells serially.
      das::sim::Tracer merged;
      merged.enable();
      merged.set_session(session_hex);
      for (const auto& context : contexts) {
        merged.merge_from(context->tracer);
      }
      if (!merged.write_json(trace_path)) {
        throw std::runtime_error("cannot write trace file: " + trace_path);
      }
    }
    if (!audit_path.empty()) {
      std::ofstream out(audit_path, std::ios::trunc);
      if (!out) {
        throw std::runtime_error("cannot write audit file: " + audit_path);
      }
      out << das::core::audit_csv_header() << ",trial\n";
      for (const std::string& row : audit_rows) out << row << "\n";
    }
    if (!metrics_path.empty()) {
      write_file(metrics_path, plane->sampler().csv(), "metrics");
    }
    if (!metrics_prom_path.empty()) {
      write_file(metrics_prom_path, plane->prometheus_snapshot(),
                 "metrics-prom");
    }
    if (!flight_path.empty()) {
      write_file(flight_path, plane->flight_json(session), "flight-record");
    }
    if (!diag_path.empty()) {
      double wall = 0.0;
      std::uint64_t events = 0;
      for (const RunReport& r : reports) {
        wall += r.wall_seconds;
        events += r.sim_events;
      }
      write_file(diag_path, diag_json(session, wall, events), "diag");
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "das_sim: " << error.what() << "\n";
    return 2;
  }
}
