#!/usr/bin/env python3
"""Summarize a das_sim --metrics=FILE time series in the terminal.

Standard library only. The input is the sampler's columnar CSV: a `time_s`
column followed by one column per enrolled series, named `name{k=v;k=v}`.

Default output is the per-tenant SLO table — peak and final burn rate plus
peak window p99 — built from the `slo.burn_rate{tenant=N}` and
`slo.window_p99_s{tenant=N}` gauge columns the traffic engine enrolls.

Other modes:
  --list            print every series name with its final value
  --series=SUBSTR   ASCII sparkline + min/max/final for each matching series

Examples:
  das_sim --tenants=8 ... --slo-target-ms=200 --metrics=run.csv
  tools/metrics_plot.py run.csv
  tools/metrics_plot.py run.csv --series='net.bytes'
"""

import argparse
import csv
import re
import sys

SPARK_CHARS = " .:-=+*#%@"

TENANT_SERIES = re.compile(r"^slo\.(burn_rate|window_p99_s)\{tenant=(\d+)\}$")


def load(path):
    """Return (times, {series_name: [values]})."""
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        if not header or header[0] != "time_s":
            sys.exit(f"{path}: not a das_sim metrics CSV (no time_s column)")
        columns = {name: [] for name in header[1:]}
        times = []
        for row in reader:
            times.append(float(row[0]))
            for name, cell in zip(header[1:], row[1:]):
                columns[name].append(float(cell))
    return times, columns


def sparkline(values, width=48):
    if not values:
        return ""
    if len(values) > width:
        # Downsample by bucket-max: spikes are the interesting part.
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    scale = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[int((v - lo) / span * scale)] for v in values)


def tenant_table(times, columns):
    """Per-tenant burn-rate / p99 summary from the SLO gauge columns."""
    tenants = {}
    for name, values in columns.items():
        m = TENANT_SERIES.match(name)
        if not m:
            continue
        kind, tenant = m.group(1), int(m.group(2))
        tenants.setdefault(tenant, {})[kind] = values
    if not tenants:
        print("no slo.* tenant series found (run with --slo-target-ms=N "
              "and --metrics=FILE)")
        return False

    print(f"{'tenant':>6} {'peak burn':>10} {'at_s':>8} {'final burn':>11} "
          f"{'peak p99_s':>11} {'breach':>7}")
    for tenant in sorted(tenants):
        series = tenants[tenant]
        burn = series.get("burn_rate", [])
        p99 = series.get("window_p99_s", [])
        peak_burn = max(burn) if burn else 0.0
        peak_at = times[burn.index(peak_burn)] if burn else 0.0
        final_burn = burn[-1] if burn else 0.0
        peak_p99 = max(p99) if p99 else 0.0
        breach = "YES" if peak_burn >= 1.0 else "-"
        print(f"{tenant:>6} {peak_burn:>10.3f} {peak_at:>8.3f} "
              f"{final_burn:>11.3f} {peak_p99:>11.4f} {breach:>7}")
    for tenant in sorted(tenants):
        burn = tenants[tenant].get("burn_rate", [])
        if burn and max(burn) > 0:
            print(f"\nburn_rate tenant={tenant}: |{sparkline(burn)}|"
                  f" (0 .. {max(burn):.3f})")
    return True


def list_series(times, columns):
    width = max((len(name) for name in columns), default=0)
    print(f"{len(times)} samples, {times[0]:.3f}s .. {times[-1]:.3f}s"
          if times else "empty series")
    for name, values in columns.items():
        final = values[-1] if values else 0.0
        print(f"  {name:<{width}}  final={final:g}")


def show_series(times, columns, needle):
    matched = False
    for name, values in columns.items():
        if needle not in name:
            continue
        matched = True
        lo, hi = (min(values), max(values)) if values else (0.0, 0.0)
        print(f"{name}\n  |{sparkline(values)}|")
        print(f"  min={lo:g} max={hi:g} final={values[-1] if values else 0:g}")
    if not matched:
        print(f"no series matching {needle!r}; try --list")
    return matched


def main():
    parser = argparse.ArgumentParser(
        description="Summarize a das_sim --metrics CSV")
    parser.add_argument("csv_path", help="metrics CSV written by --metrics=FILE")
    parser.add_argument("--list", action="store_true",
                        help="list every series and its final value")
    parser.add_argument("--series", metavar="SUBSTR",
                        help="sparkline every series whose name contains SUBSTR")
    args = parser.parse_args()

    times, columns = load(args.csv_path)
    if args.list:
        list_series(times, columns)
        return 0
    if args.series:
        return 0 if show_series(times, columns, args.series) else 1
    return 0 if tenant_table(times, columns) else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
