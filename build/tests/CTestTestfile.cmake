# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/das_simkit_tests[1]_include.cmake")
include("/root/repo/build/tests/das_net_tests[1]_include.cmake")
include("/root/repo/build/tests/das_storage_tests[1]_include.cmake")
include("/root/repo/build/tests/das_grid_tests[1]_include.cmake")
include("/root/repo/build/tests/das_pfs_tests[1]_include.cmake")
include("/root/repo/build/tests/das_kernels_tests[1]_include.cmake")
include("/root/repo/build/tests/das_core_tests[1]_include.cmake")
include("/root/repo/build/tests/das_runner_tests[1]_include.cmake")
