# Empty dependencies file for das_kernels_tests.
# This may be replaced when dependencies are built.
