file(REMOVE_RECURSE
  "CMakeFiles/das_kernels_tests.dir/kernels/catalog_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/catalog_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/features_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/features_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/flow_accumulation_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/flow_accumulation_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/flow_routing_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/flow_routing_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/gaussian_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/gaussian_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/laplacian_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/laplacian_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/median_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/median_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/registry_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/registry_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/slope_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/slope_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/statistics_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/statistics_test.cpp.o.d"
  "CMakeFiles/das_kernels_tests.dir/kernels/tiling_test.cpp.o"
  "CMakeFiles/das_kernels_tests.dir/kernels/tiling_test.cpp.o.d"
  "das_kernels_tests"
  "das_kernels_tests.pdb"
  "das_kernels_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_kernels_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
