
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernels/catalog_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/catalog_test.cpp.o.d"
  "/root/repo/tests/kernels/features_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/features_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/features_test.cpp.o.d"
  "/root/repo/tests/kernels/flow_accumulation_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/flow_accumulation_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/flow_accumulation_test.cpp.o.d"
  "/root/repo/tests/kernels/flow_routing_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/flow_routing_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/flow_routing_test.cpp.o.d"
  "/root/repo/tests/kernels/gaussian_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/gaussian_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/gaussian_test.cpp.o.d"
  "/root/repo/tests/kernels/laplacian_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/laplacian_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/laplacian_test.cpp.o.d"
  "/root/repo/tests/kernels/median_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/median_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/median_test.cpp.o.d"
  "/root/repo/tests/kernels/registry_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/registry_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/registry_test.cpp.o.d"
  "/root/repo/tests/kernels/slope_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/slope_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/slope_test.cpp.o.d"
  "/root/repo/tests/kernels/statistics_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/statistics_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/statistics_test.cpp.o.d"
  "/root/repo/tests/kernels/tiling_test.cpp" "tests/CMakeFiles/das_kernels_tests.dir/kernels/tiling_test.cpp.o" "gcc" "tests/CMakeFiles/das_kernels_tests.dir/kernels/tiling_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/das_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/das_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/das_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/das_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/das_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/das_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
