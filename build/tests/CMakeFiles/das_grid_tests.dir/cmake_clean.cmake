file(REMOVE_RECURSE
  "CMakeFiles/das_grid_tests.dir/grid/dem_test.cpp.o"
  "CMakeFiles/das_grid_tests.dir/grid/dem_test.cpp.o.d"
  "CMakeFiles/das_grid_tests.dir/grid/grid_test.cpp.o"
  "CMakeFiles/das_grid_tests.dir/grid/grid_test.cpp.o.d"
  "CMakeFiles/das_grid_tests.dir/grid/image_test.cpp.o"
  "CMakeFiles/das_grid_tests.dir/grid/image_test.cpp.o.d"
  "CMakeFiles/das_grid_tests.dir/grid/serialize_test.cpp.o"
  "CMakeFiles/das_grid_tests.dir/grid/serialize_test.cpp.o.d"
  "das_grid_tests"
  "das_grid_tests.pdb"
  "das_grid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_grid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
