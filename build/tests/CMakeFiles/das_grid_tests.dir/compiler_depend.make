# Empty compiler generated dependencies file for das_grid_tests.
# This may be replaced when dependencies are built.
