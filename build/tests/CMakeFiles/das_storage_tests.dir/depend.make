# Empty dependencies file for das_storage_tests.
# This may be replaced when dependencies are built.
