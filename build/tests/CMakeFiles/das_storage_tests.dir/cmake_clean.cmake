file(REMOVE_RECURSE
  "CMakeFiles/das_storage_tests.dir/storage/compute_engine_test.cpp.o"
  "CMakeFiles/das_storage_tests.dir/storage/compute_engine_test.cpp.o.d"
  "CMakeFiles/das_storage_tests.dir/storage/disk_test.cpp.o"
  "CMakeFiles/das_storage_tests.dir/storage/disk_test.cpp.o.d"
  "CMakeFiles/das_storage_tests.dir/storage/jitter_test.cpp.o"
  "CMakeFiles/das_storage_tests.dir/storage/jitter_test.cpp.o.d"
  "das_storage_tests"
  "das_storage_tests.pdb"
  "das_storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
