# Empty dependencies file for das_pfs_tests.
# This may be replaced when dependencies are built.
