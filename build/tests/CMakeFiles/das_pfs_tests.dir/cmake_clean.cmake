file(REMOVE_RECURSE
  "CMakeFiles/das_pfs_tests.dir/pfs/client_edge_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/client_edge_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/file_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/file_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/layout_fuzz_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/layout_fuzz_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/layout_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/layout_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/local_io_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/local_io_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/metadata_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/metadata_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/redistribute_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/redistribute_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/server_client_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/server_client_test.cpp.o.d"
  "CMakeFiles/das_pfs_tests.dir/pfs/store_test.cpp.o"
  "CMakeFiles/das_pfs_tests.dir/pfs/store_test.cpp.o.d"
  "das_pfs_tests"
  "das_pfs_tests.pdb"
  "das_pfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_pfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
