# Empty dependencies file for das_runner_tests.
# This may be replaced when dependencies are built.
