file(REMOVE_RECURSE
  "CMakeFiles/das_runner_tests.dir/runner/args_test.cpp.o"
  "CMakeFiles/das_runner_tests.dir/runner/args_test.cpp.o.d"
  "CMakeFiles/das_runner_tests.dir/runner/paper_test.cpp.o"
  "CMakeFiles/das_runner_tests.dir/runner/paper_test.cpp.o.d"
  "das_runner_tests"
  "das_runner_tests.pdb"
  "das_runner_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_runner_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
