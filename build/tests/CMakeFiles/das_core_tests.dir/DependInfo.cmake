
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/as_client_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/as_client_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/as_client_test.cpp.o.d"
  "/root/repo/tests/core/bandwidth_model_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/bandwidth_model_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/bandwidth_model_test.cpp.o.d"
  "/root/repo/tests/core/cluster_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/cluster_test.cpp.o.d"
  "/root/repo/tests/core/completion_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/completion_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/completion_test.cpp.o.d"
  "/root/repo/tests/core/concurrency_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/concurrency_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/concurrency_test.cpp.o.d"
  "/root/repo/tests/core/decision_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/decision_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/decision_test.cpp.o.d"
  "/root/repo/tests/core/executor_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/executor_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/executor_test.cpp.o.d"
  "/root/repo/tests/core/forecast_vs_sim_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/forecast_vs_sim_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/forecast_vs_sim_test.cpp.o.d"
  "/root/repo/tests/core/ingest_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/ingest_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/ingest_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/planner_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/planner_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/planner_test.cpp.o.d"
  "/root/repo/tests/core/reduction_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/reduction_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/reduction_test.cpp.o.d"
  "/root/repo/tests/core/scheme_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/scheme_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/scheme_test.cpp.o.d"
  "/root/repo/tests/core/straggler_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/straggler_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/straggler_test.cpp.o.d"
  "/root/repo/tests/core/window_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/window_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/window_test.cpp.o.d"
  "/root/repo/tests/core/workload_test.cpp" "tests/CMakeFiles/das_core_tests.dir/core/workload_test.cpp.o" "gcc" "tests/CMakeFiles/das_core_tests.dir/core/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/das_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/das_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/das_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/das_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/das_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/das_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
