# Empty compiler generated dependencies file for das_core_tests.
# This may be replaced when dependencies are built.
