file(REMOVE_RECURSE
  "CMakeFiles/das_net_tests.dir/net/network_test.cpp.o"
  "CMakeFiles/das_net_tests.dir/net/network_test.cpp.o.d"
  "CMakeFiles/das_net_tests.dir/net/nic_test.cpp.o"
  "CMakeFiles/das_net_tests.dir/net/nic_test.cpp.o.d"
  "das_net_tests"
  "das_net_tests.pdb"
  "das_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
