# Empty compiler generated dependencies file for das_net_tests.
# This may be replaced when dependencies are built.
