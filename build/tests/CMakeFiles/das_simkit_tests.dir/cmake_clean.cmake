file(REMOVE_RECURSE
  "CMakeFiles/das_simkit_tests.dir/simkit/event_queue_test.cpp.o"
  "CMakeFiles/das_simkit_tests.dir/simkit/event_queue_test.cpp.o.d"
  "CMakeFiles/das_simkit_tests.dir/simkit/log_test.cpp.o"
  "CMakeFiles/das_simkit_tests.dir/simkit/log_test.cpp.o.d"
  "CMakeFiles/das_simkit_tests.dir/simkit/random_test.cpp.o"
  "CMakeFiles/das_simkit_tests.dir/simkit/random_test.cpp.o.d"
  "CMakeFiles/das_simkit_tests.dir/simkit/simulator_test.cpp.o"
  "CMakeFiles/das_simkit_tests.dir/simkit/simulator_test.cpp.o.d"
  "CMakeFiles/das_simkit_tests.dir/simkit/stats_test.cpp.o"
  "CMakeFiles/das_simkit_tests.dir/simkit/stats_test.cpp.o.d"
  "CMakeFiles/das_simkit_tests.dir/simkit/time_test.cpp.o"
  "CMakeFiles/das_simkit_tests.dir/simkit/time_test.cpp.o.d"
  "das_simkit_tests"
  "das_simkit_tests.pdb"
  "das_simkit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_simkit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
