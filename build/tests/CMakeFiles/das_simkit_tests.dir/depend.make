# Empty dependencies file for das_simkit_tests.
# This may be replaced when dependencies are built.
